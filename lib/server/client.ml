module Prng = Dkindex_datagen.Prng

type error = Retryable of string | Fatal of string

exception Error of error

let error_to_string = function
  | Retryable msg -> "retryable: " ^ msg
  | Fatal msg -> "fatal: " ^ msg

(* Circuit breaker: after [threshold] consecutive Retryable failures
   the circuit opens and calls fail fast (no dial, no timeout wait)
   for [cooldown_s]; the first call after the cooldown is a half-open
   probe — success closes the circuit, failure reopens it immediately.
   [threshold = 0] disables.  One breaker guards one endpoint: the
   single client [t] carries its own, and the cluster keeps one per
   member {e outside} the member connection, so breaker state survives
   the member being dropped and redialed. *)
type breaker_state = Br_closed | Br_open of float (* fail fast until *) | Br_half_open

type breaker = {
  threshold : int;
  cooldown_s : float;
  mutable fails : int;  (* consecutive Retryable failures *)
  mutable bstate : breaker_state;
  mutable opens : int;  (* transitions into Br_open *)
}

let breaker_make ~threshold ~cooldown_s =
  { threshold; cooldown_s; fails = 0; bstate = Br_closed; opens = 0 }

(* Admission check; transitions a cooled-down open circuit to
   half-open (admitting this one probe). *)
let breaker_admit br =
  match br.bstate with
  | Br_closed | Br_half_open -> ()
  | Br_open until ->
    if Unix.gettimeofday () >= until then br.bstate <- Br_half_open
    else raise (Error (Retryable "circuit breaker open"))

let breaker_success br =
  br.fails <- 0;
  br.bstate <- Br_closed

let breaker_failure br =
  br.fails <- br.fails + 1;
  if br.threshold > 0 then begin
    let reopen =
      match br.bstate with Br_half_open -> true | _ -> br.fails >= br.threshold
    in
    if reopen then begin
      br.bstate <- Br_open (Unix.gettimeofday () +. br.cooldown_s);
      br.opens <- br.opens + 1
    end
  end

let breaker_is_open br =
  match br.bstate with
  | Br_open until -> Unix.gettimeofday () < until
  | Br_closed | Br_half_open -> false

type t = {
  host : string;
  port : int;
  attempts : int;
  retries : int;
  timeout_s : float;
  backoff_base_s : float;
  backoff_max_s : float;
  rng : Prng.t;
  buf : Obuf.t;
  breaker : breaker;
  mutable fd : Unix.file_descr option;
  mutable next_id : int;
  mutable n_reconnects : int;
  (* Version/epoch negotiation: every new connection starts with a
     Hello carrying the highest epoch this client has observed. *)
  mutable hello_epoch : int;  (* what we will claim on the next dial *)
  mutable helloed_epoch : int;  (* what the current connection's server has seen *)
  mutable server_epoch : int;  (* epoch the server last reported *)
  mutable server_role : Wire.role option;
}

(* Internal failure classification; converted to [Error] at the
   [call] boundary. *)
exception Conn_failure of string
exception Proto_failure of string

let dial t =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  (try Unix.connect fd (ADDR_INET (Unix.inet_addr_of_string t.host, t.port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
  fd

(* Exponential backoff with full jitter: sleep uniform in
   (0, min(max, base * 2^(attempt-1))]. *)
let backoff_sleep t attempt =
  let cap = min t.backoff_max_s (t.backoff_base_s *. (2.0 ** float_of_int (attempt - 1))) in
  Unix.sleepf (cap *. (0.1 +. Prng.float t.rng 0.9))

let drop t =
  match t.fd with
  | None -> ()
  | Some fd ->
    t.fd <- None;
    (try Unix.close fd with Unix.Unix_error _ -> ())

let write_all fd b off len =
  let off = ref off and len = ref len in
  while !len > 0 do
    match Unix.write fd b !off !len with
    | n ->
      off := !off + n;
      len := !len - n
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done

let send_on t fd req =
  let id = t.next_id in
  t.next_id <- id + 1;
  Obuf.clear t.buf;
  Wire.encode_request t.buf ~id req;
  write_all fd (Obuf.base t.buf) 0 (Obuf.length t.buf);
  id

(* A read function with [Unix.read] semantics that enforces the
   per-request deadline via select. *)
let timed_read fd deadline b off len =
  let rec wait_readable dl =
    let rem = dl -. Unix.gettimeofday () in
    if rem <= 0.0 then raise (Conn_failure "response timed out");
    match Unix.select [ fd ] [] [] rem with
    | [], _, _ -> raise (Conn_failure "response timed out")
    | _ -> ()
    | exception Unix.Unix_error (EINTR, _, _) -> wait_readable dl
  in
  let rec go () =
    Option.iter wait_readable deadline;
    match Unix.read fd b off len with
    | n -> n
    | exception Unix.Unix_error (EINTR, _, _) -> go ()
  in
  go ()

let deadline_of t = if t.timeout_s > 0.0 then Some (Unix.gettimeofday () +. t.timeout_s) else None

let recv_on fd deadline =
  match Wire.read_frame ~read:(timed_read fd deadline) () with
  | `Eof -> raise (Conn_failure "connection closed")
  | `Oversized n -> raise (Proto_failure (Printf.sprintf "oversized response frame (%d bytes)" n))
  | exception Failure msg -> raise (Conn_failure msg) (* stream ended mid-frame *)
  | exception Unix.Unix_error (e, _, _) -> raise (Conn_failure (Unix.error_message e))
  | `Frame payload -> (
    match Wire.decode_response payload with
    | Ok d -> d
    | Error msg -> raise (Proto_failure ("bad response: " ^ msg)))

(* Version/epoch handshake on a freshly dialed connection.  A
   [`Version] refusal is a protocol failure (redialing cannot help);
   anything connection-shaped heals like a failed dial. *)
let hello_on t fd =
  let sent = t.hello_epoch in
  let id =
    try send_on t fd (Wire.Hello { version = Wire.version; epoch = sent })
    with Unix.Unix_error (e, _, _) -> raise (Conn_failure (Unix.error_message e))
  in
  let deadline = deadline_of t in
  let rec wait () =
    let d = recv_on fd deadline in
    if d.Wire.id = id then d.Wire.msg else wait ()
  in
  match wait () with
  | Wire.Hello_reply { version = _; epoch; role } ->
    if epoch > t.hello_epoch then t.hello_epoch <- epoch;
    t.helloed_epoch <- max sent epoch;
    t.server_epoch <- epoch;
    t.server_role <- Some role
  | Wire.Error_reply { code = `Version; message } -> raise (Proto_failure message)
  | _ -> raise (Proto_failure "unexpected reply to hello")

(* Connect if not connected, redialing with backoff up to
   [t.attempts] times.  Every new connection is helloed before use so
   the server always knows the highest epoch we have seen. *)
let ensure t =
  match t.fd with
  | Some fd -> fd
  | None ->
    let rec go attempt =
      let retry_or e =
        if attempt >= t.attempts then raise (Conn_failure e)
        else begin
          backoff_sleep t attempt;
          go (attempt + 1)
        end
      in
      match dial t with
      | fd -> (
        match hello_on t fd with
        | () ->
          t.fd <- Some fd;
          fd
        | exception e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          (match e with Conn_failure msg -> retry_or msg | e -> raise e))
      | exception Unix.Unix_error (e, _, _) ->
        retry_or (Printf.sprintf "connect %s:%d: %s" t.host t.port (Unix.error_message e))
    in
    let fd = go 1 in
    t.n_reconnects <- t.n_reconnects + 1;
    fd

let set_epoch t e =
  if e > t.hello_epoch then t.hello_epoch <- e;
  (* The current connection's server has only seen [helloed_epoch];
     drop it so the next use re-hellos with the newer epoch (this is
     what fences a deposed primary before we write to it). *)
  if t.fd <> None && t.helloed_epoch < t.hello_epoch then drop t

let server_epoch t = t.server_epoch
let server_role t = t.server_role

let connect ?(host = "127.0.0.1") ?(attempts = 1) ?(retries = 0) ?(timeout_s = 0.0)
    ?(backoff_base_s = 0.05) ?(backoff_max_s = 2.0) ?(seed = 0) ?(epoch = 0)
    ?(breaker_threshold = 0) ?(breaker_cooldown_s = 1.0) ~port () =
  let t =
    {
      host;
      port;
      attempts = max 1 attempts;
      retries = max 0 retries;
      timeout_s;
      backoff_base_s;
      backoff_max_s;
      rng = Prng.create ~seed;
      buf = Obuf.create 256;
      breaker = breaker_make ~threshold:breaker_threshold ~cooldown_s:breaker_cooldown_s;
      fd = None;
      next_id = 1;
      n_reconnects = 0;
      hello_epoch = max 0 epoch;
      helloed_epoch = -1;
      server_epoch = 0;
      server_role = None;
    }
  in
  (try ignore (ensure t) with
  | Conn_failure msg -> raise (Error (Retryable msg))
  | Proto_failure msg -> raise (Error (Fatal msg)));
  t.n_reconnects <- 0;
  t

let close = drop
let reconnects t = t.n_reconnects

let idempotent = function
  | Wire.Ping | Wire.Query _ | Wire.Query_path _ | Wire.Batch_query _ | Wire.Stats
  | Wire.Query_planned _ | Wire.Explain _ | Wire.Has_edge _ -> true
  | _ -> false

let call_once t req =
  let fd = ensure t in
  let id =
    try send_on t fd req with Unix.Unix_error (e, _, _) -> raise (Conn_failure (Unix.error_message e))
  in
  let deadline = deadline_of t in
  let rec wait () =
    let d = recv_on fd deadline in
    if d.Wire.id = id then d.Wire.msg else wait ()
  in
  wait ()

let call t req =
  breaker_admit t.breaker;
  let budget = if idempotent req then t.retries + 1 else 1 in
  let rec go attempt =
    match call_once t req with
    | resp ->
      breaker_success t.breaker;
      resp
    | exception Conn_failure msg ->
      drop t;
      if attempt < budget then begin
        backoff_sleep t attempt;
        go (attempt + 1)
      end
      else begin
        breaker_failure t.breaker;
        raise (Error (Retryable msg))
      end
    | exception Proto_failure msg ->
      drop t;
      raise (Error (Fatal msg))
  in
  go 1

let circuit_open_count t = t.breaker.opens
let circuit_open t = breaker_is_open t.breaker

(* ------------------------------------------------------------------ *)
(* Pipelining primitives: no healing, errors surface raw. *)

let current_fd t =
  match t.fd with
  | Some fd -> fd
  | None -> ( try ensure t with Conn_failure msg -> failwith ("Client: " ^ msg))

let send t req = send_on t (current_fd t) req

let send_raw_frame t payload =
  let b = Bytes.of_string (Wire.frame_of_payload payload) in
  write_all (current_fd t) b 0 (Bytes.length b)

let recv t =
  match recv_on (current_fd t) (deadline_of t) with
  | d -> d
  | exception Conn_failure msg -> failwith ("Client.recv: " ^ msg)
  | exception Proto_failure msg -> failwith ("Client.recv: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Partition-tolerant cluster client. *)

type cluster = {
  cendpoints : (string * int) array;
  cmembers : t option array;
  cbreakers : breaker array;
      (* per-endpoint, deliberately outside the member connection so
         breaker state survives drop_member + redial *)
  mutable crr : int;  (* round-robin read cursor *)
  mutable clast : int;  (* member that served the last response; -1 before any *)
  mutable cprimary : int option;
  mutable cepoch : int;  (* highest epoch observed anywhere *)
  cattempts : int;
  cretries : int;
  ctimeout_s : float;
  cseed : int;
}

let cluster_epoch cl = cl.cepoch
let cluster_primary cl = Option.map (fun i -> cl.cendpoints.(i)) cl.cprimary

(* Raise the cluster epoch and make sure every live member re-hellos
   with it before its next request. *)
let bump_epoch cl e =
  if e > cl.cepoch then begin
    cl.cepoch <- e;
    Array.iter (function Some c -> set_epoch c e | None -> ()) cl.cmembers
  end

let drop_member cl i =
  (match cl.cmembers.(i) with Some c -> close c | None -> ());
  cl.cmembers.(i) <- None;
  if cl.cprimary = Some i then cl.cprimary <- None

(* Connect (or return) member [i]; [None] if it is unreachable right
   now.  A fresh connection's Hello teaches us the member's epoch and
   role — a primary at the newest epoch is adopted as write target. *)
let member cl i =
  match cl.cmembers.(i) with
  | Some _ as s -> s
  | None -> (
    let host, port = cl.cendpoints.(i) in
    match
      connect ~host ~attempts:1 ~retries:0 ~timeout_s:cl.ctimeout_s ~seed:(cl.cseed + (31 * i))
        ~epoch:cl.cepoch ~port ()
    with
    | c ->
      cl.cmembers.(i) <- Some c;
      bump_epoch cl (server_epoch c);
      if server_role c = Some Wire.Primary && server_epoch c >= cl.cepoch then cl.cprimary <- Some i;
      Some c
    | exception Error _ -> None)

let cluster_connect ?(attempts = 1) ?(retries = 0) ?(timeout_s = 0.0) ?(seed = 0)
    ?(breaker_threshold = 0) ?(breaker_cooldown_s = 1.0) ~endpoints () =
  if endpoints = [] then invalid_arg "Client.cluster_connect: no endpoints";
  let cl =
    {
      cendpoints = Array.of_list endpoints;
      cmembers = Array.make (List.length endpoints) None;
      cbreakers =
        Array.init (List.length endpoints) (fun _ ->
            breaker_make ~threshold:breaker_threshold ~cooldown_s:breaker_cooldown_s);
      crr = 0;
      clast = -1;
      cprimary = None;
      cepoch = 0;
      cattempts = max 1 attempts;
      cretries = max 0 retries;
      ctimeout_s = timeout_s;
      cseed = seed;
    }
  in
  (* Eager sweep: learn epochs and find the primary; unreachable
     members stay lazily retried. *)
  Array.iteri (fun i _ -> ignore (member cl i)) cl.cendpoints;
  cl

let cluster_close cl =
  Array.iteri (fun i _ -> drop_member cl i) cl.cmembers;
  cl.cprimary <- None

(* Reads: round-robin over members, failing over to the next on a
   connection failure or a [`Stale] refusal.  A member whose breaker
   is open is skipped without dialing (the open circuit IS the memory
   that it was failing); success and failure feed the breaker, so a
   dead member costs one connect timeout per cooldown window instead
   of one per read. *)
let cluster_read cl req =
  let n = Array.length cl.cendpoints in
  let budget = n * (cl.cretries + 1) in
  let rec go tries i last =
    if tries >= budget then raise (Error last)
    else begin
      let next = (i + 1) mod n in
      match breaker_admit cl.cbreakers.(i) with
      | exception Error e -> go (tries + 1) next e
      | () -> (
        match member cl i with
        | None ->
          breaker_failure cl.cbreakers.(i);
          go (tries + 1) next (Retryable "no cluster member reachable")
        | Some c -> (
          set_epoch c cl.cepoch;
          match call c req with
          | Wire.Error_reply { code = `Stale; message } ->
            (* A live server refusing on staleness is healthy: answer
               the breaker's probe, fail over for the data. *)
            breaker_success cl.cbreakers.(i);
            go (tries + 1) next (Retryable ("stale replica: " ^ message))
          | resp ->
            breaker_success cl.cbreakers.(i);
            cl.crr <- next;
            cl.clast <- i;
            resp
          | exception Error ((Retryable _ | Fatal _) as e) ->
            breaker_failure cl.cbreakers.(i);
            drop_member cl i;
            go (tries + 1) next e))
    end
  in
  go 0 cl.crr (Retryable "no cluster member reachable")

(* Writes: go to the known primary, discovering it when unknown by
   sweeping members — [Not_primary] hints redirect, [Fenced] raises
   the epoch and keeps looking.  An [Ok_reply] from an older epoch is
   a deposed primary's ack racing its own fencing: refused.  Note a
   write that dies mid-flight may still have been applied on a member
   we then abandon — same caveat as single-connection retries. *)
let cluster_write cl req =
  let n = Array.length cl.cendpoints in
  let index_of host port =
    let found = ref None in
    Array.iteri (fun i (h, p) -> if !found = None && h = host && p = port then found := Some i) cl.cendpoints;
    !found
  in
  let budget = (n + 1) * (cl.cretries + 1) in
  let rec go tries i last =
    if tries >= budget then raise (Error last)
    else begin
      let next = (i + 1) mod n in
      match breaker_admit cl.cbreakers.(i) with
      | exception Error e -> go (tries + 1) next e
      | () -> (
        match member cl i with
        | None ->
          breaker_failure cl.cbreakers.(i);
          go (tries + 1) next (Retryable "no primary reachable")
        | Some c -> (
          set_epoch c cl.cepoch;
          match call c req with
          | Wire.Ok_reply { epoch; _ } when epoch < cl.cepoch ->
            breaker_success cl.cbreakers.(i);
            drop_member cl i;
            go (tries + 1) next (Retryable "stale ack from deposed primary")
          | Wire.Ok_reply { epoch; _ } as resp ->
            breaker_success cl.cbreakers.(i);
            bump_epoch cl epoch;
            cl.cprimary <- Some i;
            cl.clast <- i;
            resp
          | Wire.Fenced { epoch } ->
            (* [epoch] is the highest the fenced primary has observed,
               i.e. the current leader's lineage. *)
            breaker_success cl.cbreakers.(i);
            bump_epoch cl epoch;
            if cl.cprimary = Some i then cl.cprimary <- None;
            go (tries + 1) next (Retryable "primary fenced")
          | Wire.Not_primary { host; port } -> (
            breaker_success cl.cbreakers.(i);
            if cl.cprimary = Some i then cl.cprimary <- None;
            match index_of host port with
            | Some j when j <> i -> go (tries + 1) j (Retryable "redirected")
            | _ -> go (tries + 1) next (Retryable "not primary"))
          | resp ->
            (* Shutting_down, Read_only, app errors ... the caller's
               problem, not a routing problem. *)
            breaker_success cl.cbreakers.(i);
            cl.clast <- i;
            resp
          | exception Error ((Retryable _ | Fatal _) as e) ->
            breaker_failure cl.cbreakers.(i);
            drop_member cl i;
            go (tries + 1) next e))
    end
  in
  let start = match cl.cprimary with Some i -> i | None -> cl.crr in
  go 0 start (Retryable "no primary reachable")

let cluster_call cl req = if idempotent req then cluster_read cl req else cluster_write cl req

let cluster_last_endpoint cl = cl.clast

let cluster_circuit_open_count cl =
  Array.fold_left (fun acc br -> acc + br.opens) 0 cl.cbreakers
  + Array.fold_left
      (fun acc m -> match m with Some c -> acc + c.breaker.opens | None -> acc)
      0 cl.cmembers
