type t = { fd : Unix.file_descr; buf : Buffer.t; mutable next_id : int }

let connect ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  (try Unix.connect fd (ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
  { fd; buf = Buffer.create 256; next_id = 1 }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let rec write_all fd b off len =
  if len > 0 then
    match Unix.write fd b off len with
    | n -> write_all fd b (off + n) (len - n)
    | exception Unix.Unix_error (EINTR, _, _) -> write_all fd b off len

let send t req =
  let id = t.next_id in
  t.next_id <- id + 1;
  Buffer.clear t.buf;
  Wire.encode_request t.buf ~id req;
  let b = Buffer.to_bytes t.buf in
  write_all t.fd b 0 (Bytes.length b);
  id

let send_raw_frame t payload =
  let b = Bytes.of_string (Wire.frame_of_payload payload) in
  write_all t.fd b 0 (Bytes.length b)

let rec read_retry t b off len =
  match Unix.read t.fd b off len with
  | n -> n
  | exception Unix.Unix_error (EINTR, _, _) -> read_retry t b off len

let recv t =
  match Wire.read_frame ~read:(read_retry t) () with
  | `Eof -> failwith "Client.recv: connection closed"
  | `Oversized n -> failwith (Printf.sprintf "Client.recv: oversized frame (%d bytes)" n)
  | `Frame payload -> (
    match Wire.decode_response payload with
    | Ok d -> d
    | Error msg -> failwith ("Client.recv: bad response: " ^ msg))

let call t req =
  let id = send t req in
  let rec wait () =
    let d = recv t in
    if d.Wire.id = id then d.Wire.msg else wait ()
  in
  wait ()
