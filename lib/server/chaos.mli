(** Network chaos: a seeded in-process TCP proxy for nemesis testing.

    A {!t} listens on its own port and forwards byte streams to one
    upstream endpoint (a dkserve primary or replica), injecting the
    faults described by a {!spec} on the way through:

    - {e latency and jitter}: every delivered chunk is held for
      [delay_ms ± jitter_ms] (jitter drawn from a PRNG seeded at
      {!create}, so a given seed replays the same schedule);
    - {e bandwidth caps}: per direction, chunks are released no faster
      than [bandwidth_bps] bytes per second;
    - {e byte-level truncation}: connection [c] forwards exactly [n]
      bytes (both directions combined), then both sides are closed —
      tearing the stream mid-frame;
    - {e connection resets}: as truncation, but the close is an abort
      (SO_LINGER 0 → RST) and queued bytes are discarded;
    - {e half-open stalls}: after [n] bytes the connection forwards
      nothing more but stays open — the peer sees silence, not EOF;
    - {e timed partitions}: from [at_s] (measured from {!run}) all
      forwarding and accepting stops bidirectionally, healing after
      [heal_s]; bytes in flight are delayed, never lost;
    - {e reset storms}: at [at_s], every live connection is aborted
      at once.

    The proxy is a single-threaded {!Evloop} loop: {!run} blocks, so
    callers host it in a forked child (tests — the parent must stay
    domain-free to fork) or a spawned domain (the load generator).
    {!stop} and {!stats} are safe from other domains. *)

type action =
  | Partition of float  (** stop forwarding + accepting; heal after [s] *)
  | Stall_all of float  (** half-open everything; heal after [s] *)
  | Reset_all  (** abort every live proxied connection *)

type event = { at_s : float; action : action }
(** [at_s] is seconds from the moment {!run} starts. *)

type spec = {
  delay_ms : float;  (** base one-way delay per delivered chunk *)
  jitter_ms : float;  (** uniform ± jitter added to the delay *)
  bandwidth_bps : int;  (** per-direction byte rate; 0 = unlimited *)
  truncate : (int * int) list;
      (** [(conn, bytes)]: the [conn]th accepted connection (1-based)
          forwards exactly [bytes] bytes, then closes *)
  reset : (int * int) list;  (** as [truncate], but RST and drop the queue *)
  stall : (int * int) list;  (** as [truncate], but half-open forever *)
  events : event list;  (** timed global actions, in any order *)
}

val no_faults : spec
(** Pure pass-through (useful as a baseline and for overhead checks). *)

val spec_of_string : string -> (spec, string) result
(** Parse a [--nemesis] spec: comma-separated clauses
    {v
    delay:MS~JITTER_MS        latency (jitter optional: delay:5~3)
    bw:BYTES_PER_SEC          bandwidth cap
    truncate:CONN\@BYTES       close conn CONN after BYTES forwarded
    reset:CONN\@BYTES          abort conn CONN after BYTES forwarded
    stall:CONN\@BYTES          half-open conn CONN after BYTES
    partition:AT+DUR          partition at AT s, heal after DUR s
    stall-all:AT+DUR          global half-open at AT s for DUR s
    reset-all:AT              reset storm at AT s
    v}
    e.g. ["delay:2~1,partition:1.5+2,reset-all:5"].  The empty string
    is {!no_faults}. *)

val spec_to_string : spec -> string
(** Round-trips through {!spec_of_string}. *)

type stats = {
  accepted : int;
  forwarded_bytes : int;
  truncations : int;
  resets : int;
  stalls : int;
  partitions : int;
}

type t

val create :
  ?host:string -> ?port:int -> seed:int -> upstream:string * int -> spec -> t
(** Bind the listening socket (default 127.0.0.1:0 — read the actual
    port with {!port}) but do not serve yet.  Each accepted connection
    dials [upstream] on its own.
    @raise Unix.Unix_error if the socket cannot be bound. *)

val port : t -> int
val run : t -> unit
(** Serve until {!stop}; blocks the calling domain/process. *)

val stop : t -> unit
(** Ask {!run} to wind down (idempotent, domain-safe); it closes every
    proxied connection and the listener before returning. *)

val stats : t -> stats
(** Counters so far (domain-safe). *)
