(** Acknowledged-operation histories and their consistency checker.

    The load generator's nemesis mode records every operation it
    issues — invocation and completion wall-clock timestamps, the
    payload, and for reads the result together with the serving
    snapshot generation, replica age, and the member that answered —
    then, after the cluster has converged, probes the final state and
    hands the whole history to {!check}.

    The contract verified (the "acknowledged-history" guarantees
    dkserve actually makes, no more):

    - {e acked-write durability}: every write the cluster acknowledged
      ([Ok_reply]) is present in the final converged state.  A write
      that died ambiguously (sent, never answered) may or may not be —
      it is counted, never judged.
    - {e monotonic reads per connection}: two reads by one connection
      answered by the {e same} member must observe non-decreasing
      snapshot generations, and an edge once observed present on a
      member stays present in that member's later answers to this
      connection (generations are per-process counters, so the checks
      are scoped to the member — reads answered by different members
      may disagree within the staleness bound).
    - {e bounded staleness}: no read is served with a wire-stamped
      replica age beyond the configured staleness bound (plus a small
      grace for clock sampling).
    - {e epoch fencing}: no acknowledged write carries an epoch lower
      than one the history had already observed (in any completed
      operation) before that write was invoked — a deposed primary's
      ack slipping past its fencing would show up exactly here.

    Checking is pure and total: feed it any entry list, by
    construction or from {!load}. *)

type op =
  | Add_edge of { u : int; v : int }
  | Probe of { u : int; v : int }  (** a [Has_edge] read *)

type outcome =
  | Acked of { epoch : int }  (** write acknowledged by that epoch *)
  | Read_ok of {
      present : bool;
      generation : int;  (** serving-snapshot swap generation (per process) *)
      age_ms : int;  (** wire-stamped replica age; 0 on a primary *)
      endpoint : int;  (** cluster member index that answered; -1 unknown *)
      epoch : int;  (** highest epoch the client had observed *)
    }
  | Ambiguous of string
      (** the operation was sent but never answered — a write may or
          may not have been applied *)
  | Refused of string
      (** a typed refusal (Stale, Not_primary, Overloaded, breaker
          open...): the operation was definitely {e not} applied *)

type entry = {
  conn : int;  (** logical driver/connection id *)
  seq : int;  (** per-connection issue order *)
  op : op;
  invoked_at : float;
  completed_at : float;
  outcome : outcome;
}

(** {1 Recording} *)

type recorder

val recorder : unit -> recorder
val record : recorder -> entry -> unit
(** Domain-safe append. *)

val entries : recorder -> entry list
(** Everything recorded so far, in record order. *)

(** {1 Persistence}

    A plain-text line format, one entry per line, with the final
    converged state (one probe per written edge) appended — so a
    history file is self-contained and re-checkable offline. *)

val save : entries:entry list -> final:(int * int * bool) list -> string -> unit
val load : string -> entry list * (int * int * bool) list
(** @raise Failure on a malformed or wrong-version file. *)

(** {1 Checking} *)

type report = {
  ok : bool;
  violations : string list;  (** human-readable, first {!max_violations} *)
  writes_acked : int;
  writes_ambiguous : int;
  writes_refused : int;
  reads_checked : int;
  max_age_ms : int;  (** largest replica age any read observed *)
}

val max_violations : int

val check :
  ?staleness_grace_ms:int ->
  staleness_bound_ms:int ->
  final:(int * int * bool) list ->
  entry list ->
  report
(** [staleness_bound_ms <= 0] disables the staleness check (matching a
    server run without a bound); [staleness_grace_ms] (default 250)
    absorbs the sampling skew between the server stamping the age and
    the bound it enforces.  [final] must cover every acked write's
    edge; an acked write whose edge is missing from [final] is a
    violation (the probe sweep is part of the history's obligations). *)

val report_to_string : report -> string
(** Multi-line verdict for the load generator's summary. *)
