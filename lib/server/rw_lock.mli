(** Writer-priority readers/writer lock over [Mutex]/[Condition]
    (domain-safe in OCaml 5).

    Since the serving hot path went lock-free (readers pin an
    immutable snapshot via an atomic generation slot — see
    {!Server}), this lock is off the per-request path.  It remains
    the right tool for coarse mutator/shutdown coordination and for
    embedders that want plain exclusion; writer priority — new
    readers queue behind a waiting writer — keeps the writer's wait
    bounded under a saturating read load. *)

type t

val create : unit -> t
val read : t -> (unit -> 'a) -> 'a
val write : t -> (unit -> 'a) -> 'a
