(** Writer-priority readers/writer lock over [Mutex]/[Condition]
    (domain-safe in OCaml 5).

    Query workers hold the read side while traversing the frozen index
    ({!Dkindex_core.Index_graph.prepare_serving}); the single mutator
    domain takes the write side for each update.  Writer priority —
    new readers queue behind a waiting writer — keeps update latency
    bounded under a saturating read load. *)

type t

val create : unit -> t
val read : t -> (unit -> 'a) -> 'a
val write : t -> (unit -> 'a) -> 'a
