(** Fault injection for the durability layer's file I/O.

    A [t] is threaded through {!Wal} and {!Checkpoint} writes so the
    recovery tests can make the disk misbehave on demand: a clean
    write failure, a short write that tears a record, an abrupt
    process death mid-write (the closest a test can get to a power
    cut), or a disk that fills up and stays full.

    Production code passes no [t]; every primitive then degrades to
    the plain [Unix] call. *)

type spec =
  | Fail_nth_write of int
      (** the [n]th write call (1-based) raises [ENOSPC] without
          writing anything; later writes succeed *)
  | Short_write of int
      (** the [n]th write call writes only half its bytes, then
          raises [EIO] — leaves a torn record on disk *)
  | Crash_after_bytes of int
      (** once [n] cumulative bytes have been written, write the
          prefix up to the threshold and [Unix._exit 70] — simulates
          a crash with a partially written record *)
  | Enospc_after_bytes of int
      (** once [n] cumulative bytes have been written, write the
          prefix and raise [ENOSPC]; every later write and fsync
          raises [ENOSPC] too — a full disk that stays full *)
  | Drop_after_bytes of int
      (** once [n] cumulative bytes have been written, write the
          prefix and raise [EPIPE] forever after — a network
          partition that tears the stream mid-frame (for the
          replication socket) *)
  | Slow_write of float
      (** sleep [s] seconds before every write — a slow replica or a
          congested link *)
  | Short_read of int
      (** every read call returns at most [n] bytes — forces the
          callers' partial-read loops to actually loop *)
  | Flip_bit_after_bytes of int
      (** flip bit [n mod 8] of the byte at cumulative read offset
          [n], once — a deterministic single-bit disk corruption that
          the CRC/decoder validation paths must catch *)
  | Eintr_reads of int
      (** the first [n] read calls raise [EINTR] — a signal storm
          during recovery; callers must retry, not truncate *)

type t

val create : spec -> t

val exit_code : int
(** The status [Crash_after_bytes] exits with (70). *)

val write : t option -> Unix.file_descr -> bytes -> int -> int -> int
(** [write faults fd b off len] has [Unix.write] semantics, filtered
    through the fault spec.  [None] is a plain [Unix.write]. *)

val read : t option -> Unix.file_descr -> bytes -> int -> int -> int
(** [read faults fd b off len] has [Unix.read] semantics, filtered
    through the fault spec.  [None] is a plain [Unix.read]. *)

val read_all : t option -> string -> string
(** Read a whole file through {!read} (EINTR is retried, short reads
    are looped) — the faultable replacement for
    [In_channel.with_open_bin .. input_all]. *)

val fsync : t option -> Unix.file_descr -> unit
(** [Unix.fsync], except a tripped [Enospc_after_bytes] raises. *)

(** {1 At-rest corruption}

    Damage a {e closed} file between runs — bit rot and torn storage
    rather than faulty syscalls.  These drive the scrubber and
    anti-entropy tests. *)

val file_size : string -> int

val flip_bit_at_rest : string -> off:int -> bit:int -> unit
(** Flip bit [bit land 7] of the byte at [off], in place, fsynced.
    @raise Invalid_argument if [off] is outside the file. *)

val truncate_at_rest : string -> size:int -> unit
(** Truncate the file to [size] bytes, fsynced. *)
