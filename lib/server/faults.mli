(** Fault injection for the durability layer's file I/O.

    A [t] is threaded through {!Wal} and {!Checkpoint} writes so the
    recovery tests can make the disk misbehave on demand: a clean
    write failure, a short write that tears a record, an abrupt
    process death mid-write (the closest a test can get to a power
    cut), or a disk that fills up and stays full.

    Production code passes no [t]; every primitive then degrades to
    the plain [Unix] call. *)

type spec =
  | Fail_nth_write of int
      (** the [n]th write call (1-based) raises [ENOSPC] without
          writing anything; later writes succeed *)
  | Short_write of int
      (** the [n]th write call writes only half its bytes, then
          raises [EIO] — leaves a torn record on disk *)
  | Crash_after_bytes of int
      (** once [n] cumulative bytes have been written, write the
          prefix up to the threshold and [Unix._exit 70] — simulates
          a crash with a partially written record *)
  | Enospc_after_bytes of int
      (** once [n] cumulative bytes have been written, write the
          prefix and raise [ENOSPC]; every later write and fsync
          raises [ENOSPC] too — a full disk that stays full *)
  | Drop_after_bytes of int
      (** once [n] cumulative bytes have been written, write the
          prefix and raise [EPIPE] forever after — a network
          partition that tears the stream mid-frame (for the
          replication socket) *)
  | Slow_write of float
      (** sleep [s] seconds before every write — a slow replica or a
          congested link *)

type t

val create : spec -> t

val exit_code : int
(** The status [Crash_after_bytes] exits with (70). *)

val write : t option -> Unix.file_descr -> bytes -> int -> int -> int
(** [write faults fd b off len] has [Unix.write] semantics, filtered
    through the fault spec.  [None] is a plain [Unix.write]. *)

val fsync : t option -> Unix.file_descr -> unit
(** [Unix.fsync], except a tripped [Enospc_after_bytes] raises. *)
