open Dkindex_graph
open Dkindex_core
module Cost = Dkindex_pathexpr.Cost

type config = {
  host : string;
  port : int;
  workers : int;
  queue_depth : int;
  deadline_s : float;
  idle_timeout_s : float;
  max_frame : int;
  snapshot_path : string option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7411;
    workers = 2;
    queue_depth = 256;
    deadline_s = 10.0;
    idle_timeout_s = 60.0;
    max_frame = Wire.max_frame_default;
    snapshot_path = None;
  }

(* ------------------------------------------------------------------ *)
(* Bounded multi-producer/multi-consumer queue.  [try_push] sheds when
   full (the admission-control point); [pop] blocks and returns [None]
   once the queue is closed and drained. *)

module Bqueue = struct
  type 'a t = {
    mu : Mutex.t;
    nonempty : Condition.t;
    q : 'a Queue.t;
    cap : int;
    mutable closed : bool;
  }

  let create cap =
    { mu = Mutex.create (); nonempty = Condition.create (); q = Queue.create (); cap; closed = false }

  let try_push t x =
    Mutex.lock t.mu;
    let ok = (not t.closed) && Queue.length t.q < t.cap in
    if ok then begin
      Queue.push x t.q;
      Condition.signal t.nonempty
    end;
    Mutex.unlock t.mu;
    ok

  let pop t =
    Mutex.lock t.mu;
    while Queue.is_empty t.q && not t.closed do
      Condition.wait t.nonempty t.mu
    done;
    let r = if Queue.is_empty t.q then None else Some (Queue.pop t.q) in
    Mutex.unlock t.mu;
    r

  let close t =
    Mutex.lock t.mu;
    t.closed <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mu

  let is_empty t =
    Mutex.lock t.mu;
    let r = Queue.is_empty t.q in
    Mutex.unlock t.mu;
    r
end

(* ------------------------------------------------------------------ *)
(* Connections.  The main domain owns the read side (buffer, frame
   extraction) and is the only closer of the file descriptor; any
   domain may write a response under [wmu].  [closed] is flipped under
   [wmu] before the descriptor is closed, so a writer holding [wmu]
   can never race a close into a reused descriptor. *)

type conn = {
  fd : Unix.file_descr;
  mutable rbuf : Bytes.t;
  mutable rlen : int;
  wmu : Mutex.t;
  mutable closed : bool;
  mutable last_active : float;
}

type pending = { conn : conn; id : int; req : Wire.request; arrival : float }

type state = {
  cfg : config;
  lock : Rw_lock.t;
  mutable index : Index_graph.t;
  durability : Checkpoint.t option;
  readq : pending Bqueue.t;
  writeq : pending Bqueue.t;
  in_flight : int Atomic.t;
  stop : bool Atomic.t;
  served : int Atomic.t;
  shed : int Atomic.t;
  proto_errors : int Atomic.t;
}

(* Write every byte to a non-blocking socket, waiting for writability
   between partial writes.  A peer that stops reading for ~30 s is
   treated as dead (EPIPE) rather than wedging the writing domain. *)
let write_all fd b off len =
  let stalls = ref 0 in
  let off = ref off and len = ref len in
  while !len > 0 do
    match Unix.write fd b !off !len with
    | n ->
      off := !off + n;
      len := !len - n;
      stalls := 0
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
      incr stalls;
      if !stalls > 30 then raise (Unix.Unix_error (EPIPE, "write", "stalled peer"));
      ignore (Unix.select [] [ fd ] [] 1.0)
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done

let send_response conn ~id resp =
  let buf = Buffer.create 256 in
  Wire.encode_response buf ~id resp;
  let b = Buffer.to_bytes buf in
  Mutex.lock conn.wmu;
  Fun.protect ~finally:(fun () -> Mutex.unlock conn.wmu) @@ fun () ->
  if not conn.closed then
    try write_all conn.fd b 0 (Bytes.length b)
    with Unix.Unix_error _ -> conn.closed <- true

(* ------------------------------------------------------------------ *)
(* Query workers *)

let empty_result =
  { Query_eval.nodes = []; cost = { Cost.index_visits = 0; data_visits = 0 }; n_candidates = 0; n_certain = 0 }

let wire_result (r : Query_eval.result) : Wire.query_result =
  {
    nodes = Array.of_list r.nodes;
    index_visits = r.cost.Cost.index_visits;
    data_visits = r.cost.Cost.data_visits;
    n_candidates = r.n_candidates;
    n_certain = r.n_certain;
  }

(* Per-worker validation cache, re-created whenever the served index
   is replaced wholesale (add_subgraph, demote). *)
let worker_cache cache_ref idx =
  match !cache_ref with
  | Some c when Validation_cache.index c == idx -> c
  | _ ->
    let c = Validation_cache.create idx in
    cache_ref := Some c;
    c

let eval_labels ?cache idx labels =
  let pool = Data_graph.pool (Index_graph.data idx) in
  let codes = List.map (Label.Pool.find_opt pool) labels in
  if labels = [] || List.exists Option.is_none codes then empty_result
  else Query_eval.eval_path ?cache idx (Array.of_list (List.map Option.get codes))

let stats_kvs state idx =
  let st = Index_stats.compute idx in
  [
    ("n_index_nodes", string_of_int st.Index_stats.n_nodes);
    ("n_index_edges", string_of_int st.n_edges);
    ("n_data_nodes", string_of_int st.n_data_nodes);
    ("compression", Printf.sprintf "%.3f" st.compression);
    ("largest_extent", string_of_int st.largest_extent);
    ("generation", string_of_int (Index_graph.generation idx));
    ("served", string_of_int (Atomic.get state.served));
    ("shed", string_of_int (Atomic.get state.shed));
    ("protocol_errors", string_of_int (Atomic.get state.proto_errors));
    ("workers", string_of_int state.cfg.workers);
    ("durability", match state.durability with Some _ -> "wal+checkpoint" | None -> "none");
  ]
  @ (match state.durability with Some d -> Checkpoint.stats d | None -> [])

let handle_read state cache_ref req : Wire.response =
  let idx = state.index in
  let cache flags = if flags.Wire.no_cache then None else Some (worker_cache cache_ref idx) in
  match req with
  | Wire.Ping -> Wire.Pong
  | Wire.Stats -> Wire.Stats_reply (stats_kvs state idx)
  | Wire.Query { flags; expr } ->
    Wire.Result (wire_result (Query_eval.eval_expr ?cache:(cache flags) idx expr))
  | Wire.Query_path { flags; labels } ->
    Wire.Result (wire_result (eval_labels ?cache:(cache flags) idx labels))
  | Wire.Batch_query { flags; paths } ->
    let cache = cache flags in
    Wire.Batch_result
      (Array.of_list (List.map (fun p -> wire_result (eval_labels ?cache idx p)) paths))
  | _ -> Wire.Error_reply { code = `Protocol; message = "write request on read path" }

let expired state p =
  state.cfg.deadline_s > 0.0 && Unix.gettimeofday () -. p.arrival > state.cfg.deadline_s

let deadline_reply = Wire.Error_reply { code = `Deadline; message = "deadline exceeded" }

let worker_loop state () =
  let cache_ref = ref None in
  let rec go () =
    match Bqueue.pop state.readq with
    | None -> ()
    | Some p ->
      (if not p.conn.closed then
         let resp =
           if expired state p then deadline_reply
           else
             try Rw_lock.read state.lock (fun () -> handle_read state cache_ref p.req)
             with e -> Wire.Error_reply { code = `App; message = Printexc.to_string e }
         in
         send_response p.conn ~id:p.id resp;
         Atomic.incr state.served);
      Atomic.decr state.in_flight;
      go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* The mutator: all updates, applied in FIFO order under the write
   lock.  [prepare_serving] runs before the lock is released so query
   workers never materialize lazy index state concurrently. *)

(* The loggable mutations.  Everything the WAL replays goes through
   {!Checkpoint.apply_mutation}, the same code path recovery uses, so
   live application and replay cannot diverge. *)
let mutation_of_req : Wire.request -> Wal.mutation option = function
  | Wire.Add_edge { u; v } -> Some (Wal.Add_edge { u; v })
  | Wire.Remove_edge { u; v } -> Some (Wal.Remove_edge { u; v })
  | Wire.Add_subgraph { graph; reqs } -> Some (Wal.Add_subgraph { graph; reqs })
  | Wire.Promote pairs -> Some (Wal.Promote pairs)
  | Wire.Demote reqs -> Some (Wal.Demote reqs)
  | _ -> None

let publish state idx' =
  Index_graph.prepare_serving idx';
  state.index <- idx'

let apply_write state (p : pending) : Wire.response =
  let ok () = Wire.Ok_reply { generation = Index_graph.generation state.index } in
  let app msg : Wire.response = Error_reply { code = `App; message = msg } in
  try
    match mutation_of_req p.req with
    | Some m -> (
      match state.durability with
      | Some d when Checkpoint.read_only d -> Wire.Read_only
      | durability -> (
        let idx' = Checkpoint.apply_mutation state.index m in
        (* Log after applying, before acknowledging: the WAL holds
           only mutations that succeeded, and nothing is acknowledged
           until it is logged.  A WAL failure degrades the server to
           read-only — the in-memory application stands (it can be at
           most this one unacknowledged mutation ahead of the durable
           state) and no further writes are accepted. *)
        match durability with
        | None ->
          publish state idx';
          ok ()
        | Some d -> (
          match Checkpoint.log_mutation d m with
          | () ->
            publish state idx';
            ok ()
          | exception e ->
            Checkpoint.note_wal_failure d (Printexc.to_string e);
            publish state idx';
            Wire.Read_only)))
    | None -> (
      match p.req with
      | Wire.Snapshot -> (
        match (state.durability, state.cfg.snapshot_path) with
        | Some d, _ -> (
          match Checkpoint.checkpoint_now d state.index with
          | Ok () -> ok ()
          | Error msg -> app ("checkpoint failed: " ^ msg))
        | None, Some path ->
          Index_serial.save path state.index;
          ok ()
        | None, None -> app "no snapshot path configured")
      | Wire.Shutdown ->
        let r = ok () in
        Atomic.set state.stop true;
        r
      | _ -> app "read request on write path")
  with
  | Failure msg | Invalid_argument msg -> app msg
  | e -> app (Printexc.to_string e)

let mutator_loop state () =
  let rec go () =
    match Bqueue.pop state.writeq with
    | None -> ()
    | Some p ->
      (if not p.conn.closed then
         let resp =
           if expired state p then deadline_reply
           else Rw_lock.write state.lock (fun () -> apply_write state p)
         in
         send_response p.conn ~id:p.id resp;
         Atomic.incr state.served);
      Atomic.decr state.in_flight;
      Option.iter (fun d -> Checkpoint.maybe_checkpoint d state.index) state.durability;
      go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Main loop: accept, buffered reads, frame extraction, routing. *)

let be32 b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let dispatch state conn payload =
  match Wire.decode_request payload with
  | Error msg ->
    Atomic.incr state.proto_errors;
    send_response conn ~id:0 (Wire.Error_reply { code = `Protocol; message = msg })
  | Ok { id; msg = req } ->
    if Atomic.get state.stop then
      send_response conn ~id
        (Wire.Error_reply { code = `Shutting_down; message = "server shutting down" })
    else begin
      let p = { conn; id; req; arrival = Unix.gettimeofday () } in
      let q =
        match req with
        | Wire.Ping | Wire.Query _ | Wire.Query_path _ | Wire.Batch_query _ | Wire.Stats ->
          state.readq
        | _ -> state.writeq
      in
      Atomic.incr state.in_flight;
      if not (Bqueue.try_push q p) then begin
        Atomic.decr state.in_flight;
        Atomic.incr state.shed;
        send_response conn ~id Wire.Overloaded
      end
    end

let run ?(on_ready = fun (_ : int) -> ()) ?(handle_signals = true) ?durability cfg index =
  Index_graph.prepare_serving index;
  let state =
    {
      cfg;
      lock = Rw_lock.create ();
      index;
      durability;
      readq = Bqueue.create cfg.queue_depth;
      writeq = Bqueue.create cfg.queue_depth;
      in_flight = Atomic.make 0;
      stop = Atomic.make false;
      served = Atomic.make 0;
      shed = Atomic.make 0;
      proto_errors = Atomic.make 0;
    }
  in
  if Sys.os_type = "Unix" then ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  if handle_signals then
    List.iter
      (fun s -> Sys.set_signal s (Sys.Signal_handle (fun _ -> Atomic.set state.stop true)))
    [ Sys.sigterm; Sys.sigint ];
  let listen_fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt listen_fd SO_REUSEADDR true;
  Unix.bind listen_fd (ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
  Unix.listen listen_fd 64;
  let port =
    match Unix.getsockname listen_fd with
    | ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let workers =
    Array.init (max 1 cfg.workers) (fun _ -> Domain.spawn (worker_loop state))
  in
  let mutator = Domain.spawn (mutator_loop state) in
  on_ready port;
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let close_conn conn =
    Mutex.lock conn.wmu;
    conn.closed <- true;
    Mutex.unlock conn.wmu;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    Hashtbl.remove conns conn.fd
  in
  let accept_new () =
    match Unix.accept listen_fd with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR | ECONNABORTED), _, _) -> ()
    | fd, _addr ->
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
      Hashtbl.replace conns fd
        {
          fd;
          rbuf = Bytes.create 4096;
          rlen = 0;
          wmu = Mutex.create ();
          closed = false;
          last_active = Unix.gettimeofday ();
        }
  in
  (* Extract every complete frame from the connection buffer, then
     compact what remains to the front. *)
  let process_frames conn =
    let rec go off =
      if conn.closed || conn.rlen - off < 4 then off
      else begin
        let len = be32 conn.rbuf off in
        if len > cfg.max_frame then begin
          send_response conn ~id:0
            (Wire.Error_reply
               {
                 code = `Protocol;
                 message = Printf.sprintf "frame of %d bytes exceeds limit %d" len cfg.max_frame;
               });
          Atomic.incr state.proto_errors;
          close_conn conn;
          off
        end
        else if conn.rlen - off >= 4 + len then begin
          dispatch state conn (Bytes.sub_string conn.rbuf (off + 4) len);
          go (off + 4 + len)
        end
        else off
      end
    in
    let consumed = go 0 in
    if consumed > 0 && not conn.closed then begin
      Bytes.blit conn.rbuf consumed conn.rbuf 0 (conn.rlen - consumed);
      conn.rlen <- conn.rlen - consumed
    end
  in
  let chunk = Bytes.create 65536 in
  let service_read conn =
    match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> close_conn conn
    | 0 -> close_conn conn
    | n ->
      conn.last_active <- Unix.gettimeofday ();
      let need = conn.rlen + n in
      if Bytes.length conn.rbuf < need then begin
        let bigger = Bytes.create (max need (2 * Bytes.length conn.rbuf)) in
        Bytes.blit conn.rbuf 0 bigger 0 conn.rlen;
        conn.rbuf <- bigger
      end;
      Bytes.blit chunk 0 conn.rbuf conn.rlen n;
      conn.rlen <- need;
      process_frames conn
  in
  let sweep_idle () =
    if cfg.idle_timeout_s > 0.0 then begin
      let now = Unix.gettimeofday () in
      let stale =
        Hashtbl.fold
          (fun _ c acc -> if now -. c.last_active > cfg.idle_timeout_s then c :: acc else acc)
          conns []
      in
      List.iter close_conn stale
    end
  in
  let accepting = ref true in
  let rec loop () =
    if Atomic.get state.stop then begin
      if !accepting then begin
        accepting := false;
        try Unix.close listen_fd with Unix.Unix_error _ -> ()
      end;
      (* Drain: everything already admitted gets its answer. *)
      if
        not
          (Bqueue.is_empty state.readq && Bqueue.is_empty state.writeq
          && Atomic.get state.in_flight = 0)
      then begin
        Unix.sleepf 0.005;
        loop ()
      end
    end
    else begin
      let fds =
        (if !accepting then [ listen_fd ] else [])
        @ Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []
      in
      (match Unix.select fds [] [] 0.5 with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | ready, _, _ ->
        List.iter
          (fun fd ->
            if fd = listen_fd && !accepting then accept_new ()
            else
              match Hashtbl.find_opt conns fd with
              | Some conn -> service_read conn
              | None -> ())
          ready;
        sweep_idle ());
      loop ()
    end
  in
  loop ();
  Bqueue.close state.readq;
  Bqueue.close state.writeq;
  Array.iter Domain.join workers;
  Domain.join mutator;
  (* Sockets go first: a failing final snapshot (disk full, say) must
     not leave descriptors open or the drain half-finished — it turns
     into an [Error _] the caller can exit nonzero on. *)
  Hashtbl.iter
    (fun _ c ->
      Mutex.lock c.wmu;
      c.closed <- true;
      Mutex.unlock c.wmu;
      try Unix.close c.fd with Unix.Unix_error _ -> ())
    conns;
  let final_durability =
    match state.durability with
    | None -> Ok ()
    | Some d -> Checkpoint.close d state.index
  in
  let final_snapshot =
    match cfg.snapshot_path with
    | None -> Ok ()
    | Some path -> (
      try
        Index_serial.save path state.index;
        Ok ()
      with e -> Error (Printf.sprintf "final snapshot %s: %s" path (Printexc.to_string e)))
  in
  match (final_durability, final_snapshot) with
  | Ok (), Ok () -> Ok ()
  | Error a, Error b -> Error (a ^ "; " ^ b)
  | Error e, _ | _, Error e -> Error e
