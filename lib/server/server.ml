open Dkindex_graph
open Dkindex_core
module Cost = Dkindex_pathexpr.Cost
module Plan = Dkindex_planner.Plan
module Planner = Dkindex_planner.Planner

type config = {
  host : string;
  port : int;
  workers : int;
  queue_depth : int;
  deadline_s : float;
  idle_timeout_s : float;
  max_frame : int;
  snapshot_path : string option;
  max_conns : int;
      (* admission control: accepted connections beyond this budget are
         answered with one Overloaded frame and closed; <= 0 disables *)
  read_progress_deadline_s : float;
      (* a started frame must complete within this window or the
         connection is evicted (slow-loris defense); <= 0 disables *)
  scrub_interval_s : float;
      (* background at-rest scrub cadence (needs durability); <= 0
         disables *)
  scrub_max_bytes_per_s : int;  (* scrub read-rate bound; <= 0 unlimited *)
  anti_entropy_interval_s : float;
      (* replica-side digest comparison cadence; <= 0 disables *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7411;
    workers = 2;
    queue_depth = 256;
    deadline_s = 10.0;
    idle_timeout_s = 60.0;
    max_frame = Wire.max_frame_default;
    snapshot_path = None;
    max_conns = 0;
    read_progress_deadline_s = 0.0;
    scrub_interval_s = 0.0;
    scrub_max_bytes_per_s = 0;
    anti_entropy_interval_s = 0.0;
  }

(* ------------------------------------------------------------------ *)
(* Bounded multi-producer/multi-consumer queue.  [try_push] sheds when
   full (the admission-control point); [pop] blocks and returns [None]
   once the queue is closed and drained. *)

module Bqueue = struct
  type 'a t = {
    mu : Mutex.t;
    nonempty : Condition.t;
    notfull : Condition.t;
    q : 'a Queue.t;
    cap : int;
    mutable closed : bool;
  }

  let create cap =
    {
      mu = Mutex.create ();
      nonempty = Condition.create ();
      notfull = Condition.create ();
      q = Queue.create ();
      cap;
      closed = false;
    }

  let try_push t x =
    Mutex.lock t.mu;
    let ok = (not t.closed) && Queue.length t.q < t.cap in
    if ok then begin
      Queue.push x t.q;
      Condition.signal t.nonempty
    end;
    Mutex.unlock t.mu;
    ok

  (* Blocking push for producers that must never shed (the replication
     tailer feeding the mutator).  Silently drops once closed — by
     then the consumer is gone and the producer is shutting down. *)
  let push t x =
    Mutex.lock t.mu;
    while (not t.closed) && Queue.length t.q >= t.cap do
      Condition.wait t.notfull t.mu
    done;
    if not t.closed then begin
      Queue.push x t.q;
      Condition.signal t.nonempty
    end;
    Mutex.unlock t.mu

  let pop t =
    Mutex.lock t.mu;
    while Queue.is_empty t.q && not t.closed do
      Condition.wait t.nonempty t.mu
    done;
    let r = if Queue.is_empty t.q then None else Some (Queue.pop t.q) in
    Condition.signal t.notfull;
    Mutex.unlock t.mu;
    r

  let close t =
    Mutex.lock t.mu;
    t.closed <- true;
    Condition.broadcast t.nonempty;
    Condition.broadcast t.notfull;
    Mutex.unlock t.mu

  let is_empty t =
    Mutex.lock t.mu;
    let r = Queue.is_empty t.q in
    Mutex.unlock t.mu;
    r

  let length t =
    Mutex.lock t.mu;
    let r = Queue.length t.q in
    Mutex.unlock t.mu;
    r
end

(* ------------------------------------------------------------------ *)
(* Connections.  The main domain owns the read side (buffer, frame
   extraction) and is the only closer of the file descriptor; any
   domain may write a response under [wmu].  [closed] is flipped under
   [wmu] before the descriptor is closed, so a writer holding [wmu]
   can never race a close into a reused descriptor.  [wbuf] is the
   shared frame-encoding buffer, also guarded by [wmu]: responses are
   encoded straight into it (no per-reply [Buffer.to_bytes]) and the
   main domain batches several inline replies into one write. *)

type conn = {
  fd : Unix.file_descr;
  mutable rbuf : Bytes.t;
  mutable rlen : int;
  wmu : Mutex.t;
  wbuf : Obuf.t;
  mutable closed : bool;
  mutable detached : bool;
      (* handed to the replication hub: the main loop stops reading,
         never closes the fd, and drops the conn from its table *)
  mutable last_active : float;
  mutable frame_start : float;
      (* wall time the currently buffered partial frame started, 0.0
         when the read buffer holds no incomplete frame — the clock
         the read-progress deadline runs against *)
}

type pending = { conn : conn; id : int; req : Wire.request; arrival : float }

(* The write queue carries client requests, replication-stream events,
   and integrity-domain jobs; all are applied by the single mutator
   domain in FIFO order, so replica reads observe mutations in primary
   order.  Running the integrity work on the mutator is what makes the
   digest tracker trivially race-free: a refresh always sees exactly
   the published state together with its committed marks, and repairs
   ride the same apply/swap path as every other mutation. *)
type wjob =
  | Wreq of pending
  | Wrepl of Replication.event
  | Wdigest of (Integrity.digests * (int * int)) option Atomic.t
      (* digest of the published state, stamped with the write-stream
         position it reflects *)
  | Wcheckpoint of int Atomic.t  (* 0 pending / 1 ok / 2 failed *)
  | Wrepair of {
      sections : (int * (int * int) array) list;
          (* primary's data edges per divergent range *)
      status : int Atomic.t;  (* 0 pending / 1 done *)
      repaired : int Atomic.t;  (* ranges whose rows actually changed *)
    }

(* The serving snapshot: a frozen index plus its swap generation.
   Readers load it through one [Atomic.t]; the mutator maintains two
   physical copies of the index ("left-right"): it mutates the spare
   copy, publishes it with a single atomic swap, and catches the
   retired copy up before the next write — after waiting for every
   reader slot to have moved past the retired generation.  Readers
   therefore never take a lock and never observe a half-applied
   mutation. *)
type snap = { idx : Index_graph.t; gen : int }

type state = {
  cfg : config;
  lock : Rw_lock.t;
      (* mutator/shutdown coordination only — never touched by the
         per-request read path *)
  serving : snap Atomic.t;
  slots : int Atomic.t array;
      (* one per reader domain (slot 0 = the event-loop domain's
         inline reader): -1 when idle, else the generation being
         read *)
  mutable spare : Index_graph.t;  (* mutator-owned back copy *)
  mutable lag : Wal.mutation list;
      (* mutations in serving but not yet in spare, newest first *)
  mutable spare_dirty : bool;
      (* a failed application left the spare suspect: rebuild it from
         the serving side before the next mutation *)
  swaps : int Atomic.t;
  mutable wake : unit -> unit;  (* nudges the event loop (self-pipe) *)
  mutable evloop_backend : string;
  durability : Checkpoint.t option;
  readq : pending Bqueue.t;
  writeq : wjob Bqueue.t;
  in_flight : int Atomic.t;
  stop : bool Atomic.t;
  served : int Atomic.t;
  served_inline : int Atomic.t;
  shed : int Atomic.t;
  proto_errors : int Atomic.t;
  deadline_expired : int Atomic.t;
  started_at : float;
  evicted_slow_clients : int Atomic.t;
  rejected_at_admission : int Atomic.t;
  (* replication / failover *)
  epoch : int Atomic.t;  (* our primary epoch (a replica carries its lineage's) *)
  max_seen : int Atomic.t;  (* highest epoch observed from any peer *)
  is_primary : bool Atomic.t;
  fenced : bool Atomic.t;  (* a peer proved a newer primary exists *)
  hub : Replication.hub option Atomic.t;
  mk_hub : Checkpoint.t -> Replication.hub;  (* for promotion *)
  replica : Replication.replica option;
  repl_apply_errors : int Atomic.t;
  (* integrity: digests, scrubbing, anti-entropy *)
  integrity : Integrity.t;
  digest_pos : (int * int) Atomic.t;
      (* write-stream position (primary WAL coordinates) the published
         state corresponds to; (-1, 0) when it cannot be stamped.  Two
         servers' digests are comparable only at equal positions. *)
  repl_records_seen : int Atomic.t;
  repl_drop_nth : int;
      (* test hook: silently skip the nth fresh replicated record
         (divergence injection); 0 = never *)
  scrub_passes : int Atomic.t;
  scrub_corruptions : int Atomic.t;
  ranges_repaired : int Atomic.t;
  replica_divergences : int Atomic.t;
  resyncs : int Atomic.t;
  anti_entropy_rounds : int Atomic.t;
  (* planner / statistics observability *)
  vcaches : Validation_cache.t list Atomic.t;
      (* every reader-side validation cache ever created, for the
         aggregate hit/miss/eviction counters in Stats *)
  stats_mu : Mutex.t;
  mutable stats_srcs : Index_stats.source list;
      (* generation-gated Index_stats per physical copy (<= 2 live) *)
  planned : int Atomic.t;
  planned_index_scans : int Atomic.t;
  planned_raw_scans : int Atomic.t;
  explains : int Atomic.t;
  plan_fallbacks : int Atomic.t;
}

(* ------------------------------------------------------------------ *)
(* Snapshot acquisition (readers) and the swap/grace protocol
   (mutator).  A reader publishes the generation it is about to read,
   then re-checks the serving pointer: if a swap raced in between it
   retries, so once the loop exits the mutator is guaranteed to see
   either the published (current) generation or a later one in the
   slot.  The mutator's grace wait only blocks on slots still
   publishing a generation {e older} than the current one — i.e. on
   requests that were already in flight on the retired copy. *)

let snap_acquire state slot =
  let rec go () =
    let s = Atomic.get state.serving in
    Atomic.set slot s.gen;
    if (Atomic.get state.serving).gen = s.gen then s
    else begin
      Atomic.set slot (-1);
      go ()
    end
  in
  go ()

let snap_release slot = Atomic.set slot (-1)

let with_snapshot state slot f =
  let s = snap_acquire state slot in
  Fun.protect ~finally:(fun () -> snap_release slot) (fun () -> f s)

(* Mutator-side: wait until no reader is still on a generation older
   than [gen].  Bounded by the duration of the in-flight requests that
   acquired before the last swap (the same wait a writer-priority
   rw-lock would impose), but paid before the {e next} mutation
   rather than on the acknowledgement path. *)
let wait_readers state gen =
  Array.iter
    (fun slot ->
      let spins = ref 0 in
      let busy () =
        let v = Atomic.get slot in
        v >= 0 && v < gen
      in
      while busy () do
        incr spins;
        if !spins < 200 then Domain.cpu_relax () else Unix.sleepf 0.0002
      done)
    state.slots

let clone_of_serving state =
  Index_serial.of_string (Index_serial.to_string (Atomic.get state.serving).idx)

(* Bring the spare copy up to date with the serving content.  Called
   by the mutator before touching the spare; the grace wait happens
   here, off the acknowledgement path of the previous write. *)
let catch_up state =
  if state.spare_dirty then begin
    wait_readers state (Atomic.get state.serving).gen;
    state.spare <- clone_of_serving state;
    Integrity.attach state.integrity state.spare;
    state.spare_dirty <- false;
    state.lag <- []
  end
  else if state.lag <> [] then begin
    wait_readers state (Atomic.get state.serving).gen;
    (try
       List.iter
         (fun m -> state.spare <- Checkpoint.apply_mutation state.spare m)
         (List.rev state.lag)
     with _ ->
       (* The serving side applied these; a spare that cannot replay
          them would diverge — rebuild it from the serving content. *)
       state.spare <- clone_of_serving state;
       Integrity.attach state.integrity state.spare);
    state.lag <- []
  end

(* Publish [idx'] (the mutated spare) as the new serving snapshot and
   retire the old one into the spare slot, remembering [muts] for
   catch-up. *)
let swap_in state idx' muts =
  Index_graph.prepare_serving idx';
  let old = Atomic.get state.serving in
  Atomic.set state.serving { idx = idx'; gen = old.gen + 1 };
  Atomic.incr state.swaps;
  state.spare <- old.idx;
  state.lag <- muts

(* Install a wholesale replacement (replica snapshot bootstrap): both
   copies are fresh, nothing retired is ever mutated, so no grace wait
   is needed — readers still on the old copies finish on them and the
   GC reclaims them after. *)
let install state ~serving ~spare =
  Index_graph.prepare_serving serving;
  let old = Atomic.get state.serving in
  Atomic.set state.serving { idx = serving; gen = old.gen + 1 };
  Atomic.incr state.swaps;
  state.spare <- spare;
  state.lag <- [];
  state.spare_dirty <- false

(* ------------------------------------------------------------------ *)
(* Response writing.  All replies are encoded into the connection's
   [wbuf] under [wmu] and flushed from its backing bytes directly —
   no intermediate copy.  Workers and the mutator flush immediately;
   the main domain's inline fast path batches every reply of a frame
   batch and flushes once ([flush_replies]), so a pipelined client
   costs one [write] per batch instead of one per request. *)

let write_all fd b off len =
  let stalls = ref 0 in
  let off = ref off and len = ref len in
  while !len > 0 do
    match Unix.write fd b !off !len with
    | n ->
      off := !off + n;
      len := !len - n;
      stalls := 0
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
      incr stalls;
      if !stalls > 30 then raise (Unix.Unix_error (EPIPE, "write", "stalled peer"));
      ignore (Unix.select [] [ fd ] [] 1.0)
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done

(* Must be called with [conn.wmu] held. *)
let flush_locked conn =
  if (not conn.closed) && Obuf.length conn.wbuf > 0 then (
    try write_all conn.fd (Obuf.base conn.wbuf) 0 (Obuf.length conn.wbuf)
    with Unix.Unix_error _ -> conn.closed <- true);
  Obuf.clear conn.wbuf

let send_response conn ~id resp =
  Mutex.lock conn.wmu;
  Fun.protect ~finally:(fun () -> Mutex.unlock conn.wmu) @@ fun () ->
  if not conn.closed then begin
    Wire.encode_response conn.wbuf ~id resp;
    flush_locked conn
  end

(* Main-domain fast path: append without flushing. *)
let buffer_response conn ~id resp =
  Mutex.lock conn.wmu;
  Fun.protect ~finally:(fun () -> Mutex.unlock conn.wmu) @@ fun () ->
  if not conn.closed then Wire.encode_response conn.wbuf ~id resp

let flush_responses conn =
  Mutex.lock conn.wmu;
  Fun.protect ~finally:(fun () -> Mutex.unlock conn.wmu) @@ fun () ->
  flush_locked conn

(* ------------------------------------------------------------------ *)
(* Query evaluation (shared by the worker domains and the main
   domain's inline fast path) *)

let empty_result =
  { Query_eval.nodes = []; cost = { Cost.index_visits = 0; data_visits = 0 }; n_candidates = 0; n_certain = 0 }

let wire_result ~gen ~age_ms (r : Query_eval.result) : Wire.query_result =
  {
    nodes = Array.of_list r.nodes;
    index_visits = r.cost.Cost.index_visits;
    data_visits = r.cost.Cost.data_visits;
    n_candidates = r.n_candidates;
    n_certain = r.n_certain;
    generation = gen;
    age_ms;
  }

(* Per-reader state: validation caches plus cost-based planners.  The
   serving snapshot alternates between the two physical copies as
   writes land, so each reader keeps one cache (and one planner) per
   copy — two live entries keyed by physical identity; a wholesale
   replacement simply ages both out.  Planners come in a cached and an
   uncached flavor so Query_planned honors the [no_cache] flag. *)
type reader = {
  caches : Validation_cache.t list ref;
  planners : (bool * Planner.t) list ref;  (* (uses the cache?, planner) *)
}

let new_reader () = { caches = ref []; planners = ref [] }

let reader_cache state rd idx =
  match List.find_opt (fun c -> Validation_cache.index c == idx) !(rd.caches) with
  | Some c -> c
  | None ->
    let c = Validation_cache.create idx in
    (rd.caches :=
       match !(rd.caches) with
       | prev :: _ -> [ c; prev ]
       | [] -> [ c ]);
    (* Register for the aggregate vcache_* stats; the list only ever
       grows by two entries per reader, so a cons race retry is cheap
       and rare. *)
    let rec add () =
      let cur = Atomic.get state.vcaches in
      if not (Atomic.compare_and_set state.vcaches cur (c :: cur)) then add ()
    in
    add ();
    c

(* The server-side plan family per snapshot: the serving index (named
   "index") plus the raw data graph the planner always carries.  The
   richer multi-index family lives CLI-side where the whole family is
   built over an immutable graph; here the planner's job is per-query
   routing between the index scan and the raw fallback, priced from
   the live catalog (generation-gated, so update churn refreshes it). *)
let reader_planner state rd ~use_cache idx =
  let matches (cached, pl) =
    cached = use_cache
    && match Planner.find pl "index" with Some i -> i == idx | None -> false
  in
  match List.find_opt matches !(rd.planners) with
  | Some (_, pl) -> pl
  | None ->
    let pl = Planner.create (Index_graph.data idx) in
    (if use_cache then
       Planner.register pl ~name:"index" ~cache:(reader_cache state rd idx) idx
     else Planner.register pl ~name:"index" idx);
    (* cap at 4 live planners: {cached, uncached} x {two copies} *)
    rd.planners :=
      (use_cache, pl) :: (match !(rd.planners) with a :: b :: c :: _ -> [ a; b; c ] | l -> l);
    pl

let eval_labels ?cache idx labels =
  let pool = Data_graph.pool (Index_graph.data idx) in
  let codes = List.map (Label.Pool.find_opt pool) labels in
  if labels = [] || List.exists Option.is_none codes then empty_result
  else Query_eval.eval_path ?cache idx (Array.of_list (List.map Option.get codes))

(* Index statistics are generation-gated ({!Index_stats.source}): a
   Stats request on an unchanged index returns the memoized record
   instead of sweeping every live index node.  Sources are keyed by
   physical copy like the reader caches. *)
let stats_source state idx =
  Mutex.lock state.stats_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock state.stats_mu) @@ fun () ->
  match
    List.find_opt (fun s -> Index_stats.source_index s == idx) state.stats_srcs
  with
  | Some s -> s
  | None ->
    let s = Index_stats.source idx in
    (state.stats_srcs <-
       match state.stats_srcs with
       | prev :: _ -> [ s; prev ]
       | [] -> [ s ]);
    s

let vcache_kvs state =
  let hits = ref 0 and misses = ref 0 and entries = ref 0 and evictions = ref 0 in
  let caches = Atomic.get state.vcaches in
  List.iter
    (fun c ->
      let h, m = Validation_cache.stats c in
      hits := !hits + h;
      misses := !misses + m;
      entries := !entries + Validation_cache.entry_count c;
      evictions := !evictions + Validation_cache.evictions c)
    caches;
  [
    ("vcache_instances", string_of_int (List.length caches));
    ("vcache_hits", string_of_int !hits);
    ("vcache_misses", string_of_int !misses);
    ("vcache_entries", string_of_int !entries);
    ("vcache_evictions", string_of_int !evictions);
  ]

let stats_kvs state idx =
  let st = Index_stats.get (stats_source state idx) in
  let b v = if v then "true" else "false" in
  [
    ("n_index_nodes", string_of_int st.Index_stats.n_nodes);
    ("n_index_edges", string_of_int st.n_edges);
    ("n_data_nodes", string_of_int st.n_data_nodes);
    ("compression", Printf.sprintf "%.3f" st.compression);
    ("largest_extent", string_of_int st.largest_extent);
    ("generation", string_of_int (Index_graph.generation idx));
    ("served", string_of_int (Atomic.get state.served));
    ("served_inline", string_of_int (Atomic.get state.served_inline));
    ("shed", string_of_int (Atomic.get state.shed));
    ("protocol_errors", string_of_int (Atomic.get state.proto_errors));
    ("deadline_expired", string_of_int (Atomic.get state.deadline_expired));
    ("read_queue_depth", string_of_int (Bqueue.length state.readq));
    ("write_queue_depth", string_of_int (Bqueue.length state.writeq));
    ("queue_capacity", string_of_int state.cfg.queue_depth);
    ("in_flight", string_of_int (Atomic.get state.in_flight));
    ("workers", string_of_int state.cfg.workers);
    ("evloop_backend", state.evloop_backend);
    ("snapshot_swaps", string_of_int (Atomic.get state.swaps));
    ("role", if Atomic.get state.is_primary then "primary" else "replica");
    ("epoch", string_of_int (Atomic.get state.epoch));
    ("max_seen_epoch", string_of_int (Atomic.get state.max_seen));
    ("fenced", b (Atomic.get state.fenced));
    ("repl_apply_errors", string_of_int (Atomic.get state.repl_apply_errors));
    ("durability", match state.durability with Some _ -> "wal+checkpoint" | None -> "none");
    ("uptime_s", Printf.sprintf "%.1f" (Unix.gettimeofday () -. state.started_at));
    ("evicted_slow_clients", string_of_int (Atomic.get state.evicted_slow_clients));
    ("rejected_at_admission", string_of_int (Atomic.get state.rejected_at_admission));
    ("planned_queries", string_of_int (Atomic.get state.planned));
    ("planned_index_scans", string_of_int (Atomic.get state.planned_index_scans));
    ("planned_raw_scans", string_of_int (Atomic.get state.planned_raw_scans));
    ("explain_queries", string_of_int (Atomic.get state.explains));
    ("plan_fallbacks", string_of_int (Atomic.get state.plan_fallbacks));
    ("scrub_passes", string_of_int (Atomic.get state.scrub_passes));
    ("scrub_corruptions_found", string_of_int (Atomic.get state.scrub_corruptions));
    ("ranges_repaired", string_of_int (Atomic.get state.ranges_repaired));
    ("replica_divergences", string_of_int (Atomic.get state.replica_divergences));
    ("integrity_resyncs", string_of_int (Atomic.get state.resyncs));
    ("anti_entropy_rounds", string_of_int (Atomic.get state.anti_entropy_rounds));
  ]
  @ vcache_kvs state
  @ (match state.durability with Some d -> Checkpoint.stats d | None -> [])
  @ (match Atomic.get state.hub with Some h -> Replication.hub_stats h | None -> [])
  @ (match state.replica with Some r -> Replication.replica_stats r | None -> [])

(* How stale is the data a read is answered from?  0 on a primary (and
   on a promoted replica); on a replica, the milliseconds since the
   primary was last heard from — the same clock the staleness-bound
   refusal runs against.  A replica that never synced answers no reads
   (they are refused [`Stale]), so the [None] arm is unreachable on
   the read path; u32-max keeps it honest anyway. *)
let read_age_ms state =
  match state.replica with
  | None -> 0
  | Some r -> (
    match Replication.contact_age_s r with
    | Some a -> int_of_float (a *. 1000.0)
    | None -> 0xffffffff)

let handle_read state (snap : snap) rd req : Wire.response =
  let idx = snap.idx in
  let cache flags = if flags.Wire.no_cache then None else Some (reader_cache state rd idx) in
  let wire_result r = wire_result ~gen:snap.gen ~age_ms:(read_age_ms state) r in
  match req with
  | Wire.Ping -> Wire.Pong
  | Wire.Stats -> Wire.Stats_reply (stats_kvs state idx)
  | Wire.Query { flags; expr } ->
    Wire.Result (wire_result (Query_eval.eval_expr ?cache:(cache flags) idx expr))
  | Wire.Query_path { flags; labels } ->
    Wire.Result (wire_result (eval_labels ?cache:(cache flags) idx labels))
  | Wire.Has_edge { u; v } ->
    (* Total on arbitrary ids: a node outside the graph trivially has
       no edges (the history harness probes ids from its own dataset
       recipe, which need not match ours). *)
    let g = Index_graph.data idx in
    let n = Data_graph.n_nodes g in
    Wire.Edge_reply
      {
        present = u >= 0 && u < n && v >= 0 && v < n && Data_graph.has_edge g u v;
        generation = snap.gen;
        age_ms = read_age_ms state;
      }
  | Wire.Batch_query { flags; paths } ->
    let cache = cache flags in
    Wire.Batch_result
      (Array.of_list (List.map (fun p -> wire_result (eval_labels ?cache idx p)) paths))
  | Wire.Query_planned { flags; expr } ->
    let pl = reader_planner state rd ~use_cache:(not flags.Wire.no_cache) idx in
    let fb0 = Planner.fallbacks pl in
    let plan, r = Planner.eval_planned pl expr in
    Atomic.incr state.planned;
    (match plan.Plan.access with
    | Plan.Raw -> Atomic.incr state.planned_raw_scans
    | Plan.Scan _ | Plan.Intersect _ -> Atomic.incr state.planned_index_scans);
    let fell = Planner.fallbacks pl - fb0 in
    if fell > 0 then ignore (Atomic.fetch_and_add state.plan_fallbacks fell);
    Wire.Planned_result { plan = Plan.describe plan; result = wire_result r }
  | Wire.Explain { expr } ->
    let pl = reader_planner state rd ~use_cache:true idx in
    Atomic.incr state.explains;
    Wire.Explain_reply (Planner.explain pl expr)
  | _ -> Wire.Error_reply { code = `Protocol; message = "write request on read path" }

let expired state p =
  state.cfg.deadline_s > 0.0 && Unix.gettimeofday () -. p.arrival > state.cfg.deadline_s

let deadline_reply state =
  Atomic.incr state.deadline_expired;
  Wire.Error_reply { code = `Deadline; message = "deadline exceeded" }

(* Ping and Stats stay answerable on a stale replica (they are how an
   operator finds out it is stale); queries are refused. *)
let stale_read state req =
  match state.replica with
  | Some r -> (
    match req with
    | Wire.Ping | Wire.Stats -> false
    | _ -> Replication.stale r)
  | None -> false

let worker_loop state slot () =
  let rd = new_reader () in
  let rec go () =
    match Bqueue.pop state.readq with
    | None -> ()
    | Some p ->
      (if not p.conn.closed then
         let resp =
           if expired state p then deadline_reply state
           else if stale_read state p.req then
             Wire.Error_reply { code = `Stale; message = "replica outside staleness bound" }
           else
             try
               with_snapshot state slot (fun snap -> handle_read state snap rd p.req)
             with e -> Wire.Error_reply { code = `App; message = Printexc.to_string e }
         in
         send_response p.conn ~id:p.id resp;
         Atomic.incr state.served);
      Atomic.decr state.in_flight;
      go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* The mutator: all updates, applied in FIFO order to the spare copy
   and published with an atomic snapshot swap (see [snap] above). *)

(* The loggable mutations.  Everything the WAL replays goes through
   {!Checkpoint.apply_mutation}, the same code path recovery uses, so
   live application and replay cannot diverge. *)
let mutation_of_req : Wire.request -> Wal.mutation option = function
  | Wire.Add_edge { u; v } -> Some (Wal.Add_edge { u; v })
  | Wire.Remove_edge { u; v } -> Some (Wal.Remove_edge { u; v })
  | Wire.Add_subgraph { graph; reqs } -> Some (Wal.Add_subgraph { graph; reqs })
  | Wire.Promote pairs -> Some (Wal.Promote pairs)
  | Wire.Demote reqs -> Some (Wal.Demote reqs)
  | _ -> None

let serving_idx state = (Atomic.get state.serving).idx

let not_primary_reply state : Wire.response =
  match state.replica with
  | Some r ->
    let rc = Replication.rconfig_of r in
    Wire.Not_primary { host = rc.Replication.primary_host; port = rc.Replication.primary_port }
  | None -> Wire.Not_primary { host = state.cfg.host; port = state.cfg.port }

(* Promotion (operator request or failover watchdog), run by the
   mutator.  Epoch = 1 + the highest epoch observed anywhere,
   persisted before the role flips so a restart cannot resurrect the
   old epoch; then the replica tailer is retired and (with a data
   directory) a hub is opened for new subscribers. *)
let do_promote state : Wire.response =
  if Atomic.get state.is_primary then
    Wire.Error_reply { code = `App; message = "already primary" }
  else begin
    let e = max (Atomic.get state.epoch) (Atomic.get state.max_seen) + 1 in
    (match state.durability with
    | Some d -> (
      (try Replication.store_epoch ~dir:(Checkpoint.dir d) e
       with _ -> ());
      (* Start the new reign on a clean generation: subscribers to the
         new primary bootstrap from a checkpoint that includes
         everything replicated so far. *)
      match Checkpoint.checkpoint_now d (serving_idx state) with
      | Ok () | Error _ -> ())
    | None -> ());
    Atomic.set state.epoch e;
    Atomic.set state.max_seen e;
    Option.iter Replication.mark_promoted state.replica;
    (match (state.durability, Atomic.get state.hub) with
    | Some d, None -> Atomic.set state.hub (Some (state.mk_hub d))
    | _ -> ());
    Atomic.set state.fenced false;
    Atomic.set state.is_primary true;
    Wire.Ok_reply { generation = Index_graph.generation (serving_idx state); epoch = e }
  end

let apply_write state (p : pending) : Wire.response =
  let ok () =
    Wire.Ok_reply
      { generation = Index_graph.generation (serving_idx state); epoch = Atomic.get state.epoch }
  in
  let app msg : Wire.response = Error_reply { code = `App; message = msg } in
  try
    match mutation_of_req p.req with
    | Some m -> (
      if not (Atomic.get state.is_primary) then not_primary_reply state
      else if Atomic.get state.fenced then Wire.Fenced { epoch = Atomic.get state.max_seen }
      else
        match state.durability with
        | Some d when Checkpoint.read_only d -> Wire.Read_only
        | durability -> (
          catch_up state;
          let idx' =
            try Checkpoint.apply_mutation state.spare m
            with e ->
              (* The spare may be half-mutated; schedule a rebuild.
                 The serving side is untouched. *)
              state.spare_dirty <- true;
              raise e
          in
          Integrity.note_mutation state.integrity m;
          (* Wholesale mutations can return a brand-new index object
             with no tracer installed; attaching is idempotent. *)
          Integrity.attach state.integrity idx';
          (* Log after applying, before acknowledging: the WAL holds
             only mutations that succeeded, and nothing is acknowledged
             until it is logged.  A WAL failure degrades the server to
             read-only — the published application stands (it can be at
             most this one unacknowledged mutation ahead of the durable
             state) and no further writes are accepted. *)
          match durability with
          | None ->
            swap_in state idx' [ m ];
            Integrity.commit state.integrity;
            ok ()
          | Some d -> (
            match Checkpoint.log_mutation d m with
            | () ->
              swap_in state idx' [ m ];
              Integrity.commit state.integrity;
              Atomic.set state.digest_pos (Checkpoint.wal_position d);
              ok ()
            | exception e ->
              Checkpoint.note_wal_failure d (Printexc.to_string e);
              swap_in state idx' [ m ];
              Integrity.commit state.integrity;
              (* Applied but not logged: the published state is ahead
                 of any WAL position. *)
              Atomic.set state.digest_pos (-1, 0);
              Wire.Read_only)))
    | None -> (
      match p.req with
      | Wire.Snapshot -> (
        match (state.durability, state.cfg.snapshot_path) with
        | Some d, _ -> (
          match Checkpoint.checkpoint_now d (serving_idx state) with
          | Ok () -> ok ()
          | Error msg -> app ("checkpoint failed: " ^ msg))
        | None, Some path ->
          Index_serial.save path (serving_idx state);
          ok ()
        | None, None -> app "no snapshot path configured")
      | Wire.Digest_request ->
        (* On the mutator by design: no swap can race the refresh, so
           the digests describe exactly the published state and the
           stamped position is exact.  Served even on a stale replica —
           anti-entropy must see divergence precisely when the replica
           is unhealthy. *)
        let d = Integrity.refresh state.integrity (serving_idx state) in
        let seq, offset = Atomic.get state.digest_pos in
        Wire.Digest_reply
          {
            generation = (Atomic.get state.serving).gen;
            seq;
            offset;
            n_nodes = d.Integrity.n_nodes;
            root = d.Integrity.root;
            label_edges = d.Integrity.label_edges;
            data_ranges = d.Integrity.data_ranges;
            index_ranges = d.Integrity.index_ranges;
          }
      | Wire.Repair_fetch { ranges } ->
        let idx = serving_idx state in
        let nr = Integrity.n_ranges (Data_graph.n_nodes (Index_graph.data idx)) in
        let sections =
          List.filter_map
            (fun r -> if r >= 0 && r < nr then Some (r, Integrity.section idx r) else None)
            ranges
        in
        Wire.Repair_reply { generation = (Atomic.get state.serving).gen; sections }
      | Wire.Promote_primary -> do_promote state
      | Wire.Shutdown ->
        let r = ok () in
        Atomic.set state.stop true;
        state.wake ();
        r
      | _ -> app "read request on write path")
  with
  | Failure msg | Invalid_argument msg -> app msg
  | e -> app (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Applying the replication stream.  Mutations ride the same
   [Checkpoint.apply_mutation] path as client writes and WAL replay,
   and are logged to the replica's own WAL so a promoted replica is a
   fully durable primary.  After a reconnect the stream can replay
   bytes already applied; the WAL encoding is canonical, so each
   record's byte extent re-derives exactly and anything at or below
   the applied position is skipped.  A whole [Ev_mutations] batch is
   published with one snapshot swap. *)

let apply_repl state scratch (ev : Replication.event) =
  match ev with
  | Replication.Ev_promote -> (
    match state.replica with
    | Some r when not (Replication.is_promoted r) -> ignore (do_promote state)
    | _ -> ())
  | Replication.Ev_snapshot { index; epoch; seq } -> (
    match state.replica with
    | Some r when not (Replication.is_promoted r) -> (
      (* Two independent decodes: the snapshot becomes both physical
         copies of the left-right pair. *)
      match (Index_serial.of_string index, Index_serial.of_string index) with
      | idx', spare' ->
        Integrity.invalidate state.integrity;
        Integrity.attach state.integrity idx';
        Integrity.attach state.integrity spare';
        install state ~serving:idx' ~spare:spare';
        Integrity.commit state.integrity;
        Atomic.set state.digest_pos (seq, 0);
        (match state.durability with
        | Some d -> (
          match Checkpoint.checkpoint_now d (serving_idx state) with Ok () | Error _ -> ())
        | None -> ());
        Replication.note_installed r ~epoch ~seq
      | exception _ ->
        (* A snapshot that does not parse leaves us behind; the next
           reconnect bootstraps again. *)
        Atomic.incr state.repl_apply_errors)
    | _ -> ())
  | Replication.Ev_mutations { muts; epoch = _; seq; base; offset } -> (
    match state.replica with
    | Some r when not (Replication.is_promoted r) ->
      let aseq, aoff = Replication.applied_position r in
      if seq < aseq || (seq = aseq && offset <= aoff) then ()
      else begin
        catch_up state;
        let applied = ref [] in
        let n_applied = ref 0 in
        let pos = ref base in
        List.iter
          (fun m ->
            Buffer.clear scratch;
            Wal.encode_mutation scratch m;
            let rec_end = !pos + Buffer.length scratch in
            (if seq > aseq || rec_end > aoff then begin
               let nth = 1 + Atomic.fetch_and_add state.repl_records_seen 1 in
               if state.repl_drop_nth > 0 && nth = state.repl_drop_nth then
                 (* Divergence injection (tests): the record is skipped
                    but the applied position still advances past it, so
                    replication itself never notices. *)
                 ()
               else
                 match Checkpoint.apply_mutation state.spare m with
                 | idx' ->
                   state.spare <- idx';
                   Integrity.note_mutation state.integrity m;
                   applied := m :: !applied;
                   incr n_applied;
                   (match state.durability with
                   | Some d when not (Checkpoint.read_only d) -> (
                     try Checkpoint.log_mutation d m
                     with e -> Checkpoint.note_wal_failure d (Printexc.to_string e))
                   | _ -> ())
                 | exception _ ->
                   (* The primary applied this successfully; failing
                      here means divergence.  Count it and keep the
                      stream moving. *)
                   Atomic.incr state.repl_apply_errors
             end);
            pos := rec_end)
          muts;
        (* [lag] is newest-first, which is exactly what [applied]
           accumulated to. *)
        if !n_applied > 0 then begin
          Integrity.attach state.integrity state.spare;
          swap_in state state.spare !applied;
          Integrity.commit state.integrity
        end;
        (* The position is stamped in the primary's WAL coordinates —
           the same clock the primary stamps its own digests with. *)
        Atomic.set state.digest_pos (seq, offset);
        Replication.note_applied r ~seq ~offset ~n:!n_applied;
        Option.iter
          (fun d -> Checkpoint.maybe_checkpoint d (serving_idx state))
          state.durability
      end
    | _ -> ())

(* Anti-entropy repair, on the mutator: transform the named ranges'
   adjacency rows into the primary's ([sections]), through the same
   apply/swap path as every other mutation.  Readers only ever see the
   pre-repair or post-repair snapshot, so no acked answer is built from
   half-repaired state.  A successful repair is made durable with an
   immediate checkpoint: repairs bypass the WAL (they are corrections,
   not stream records), so only a fresh checkpoint prevents a restart
   from resurrecting the divergence. *)
let apply_repair state sections repaired =
  catch_up state;
  let applied = ref [] in
  List.iter
    (fun (range, theirs) ->
      let muts = Integrity.section_diff (Index_graph.data state.spare) ~range ~theirs in
      if muts <> [] then begin
        Atomic.incr repaired;
        List.iter
          (fun m ->
            match Checkpoint.apply_mutation state.spare m with
            | idx' ->
              state.spare <- idx';
              Integrity.note_mutation state.integrity m;
              applied := m :: !applied
            | exception _ -> Atomic.incr state.repl_apply_errors)
          muts
      end)
    sections;
  if !applied <> [] then begin
    ignore (Atomic.fetch_and_add state.ranges_repaired (Atomic.get repaired));
    Integrity.attach state.integrity state.spare;
    swap_in state state.spare !applied;
    Integrity.commit state.integrity;
    match state.durability with
    | Some d -> (
      match Checkpoint.checkpoint_now d (serving_idx state) with Ok () | Error _ -> ())
    | None -> ()
  end

let mutator_loop state () =
  let scratch = Buffer.create 256 in
  let rec go () =
    match Bqueue.pop state.writeq with
    | None -> ()
    | Some (Wrepl ev) ->
      Rw_lock.write state.lock (fun () -> apply_repl state scratch ev);
      go ()
    | Some (Wdigest box) ->
      Rw_lock.write state.lock (fun () ->
          let d = Integrity.refresh state.integrity (serving_idx state) in
          Atomic.set box (Some (d, Atomic.get state.digest_pos)));
      go ()
    | Some (Wcheckpoint flag) ->
      Rw_lock.write state.lock (fun () ->
          match state.durability with
          | Some d -> (
            match Checkpoint.checkpoint_now d (serving_idx state) with
            | Ok () -> Atomic.set flag 1
            | Error _ -> Atomic.set flag 2)
          | None -> Atomic.set flag 2);
      go ()
    | Some (Wrepair { sections; status; repaired }) ->
      Rw_lock.write state.lock (fun () ->
          try apply_repair state sections repaired
          with _ -> Atomic.incr state.repl_apply_errors);
      Atomic.set status 1;
      go ()
    | Some (Wreq p) ->
      (if not p.conn.closed then
         let resp =
           if expired state p then deadline_reply state
           else Rw_lock.write state.lock (fun () -> apply_write state p)
         in
         send_response p.conn ~id:p.id resp;
         Atomic.incr state.served);
      Atomic.decr state.in_flight;
      Option.iter (fun d -> Checkpoint.maybe_checkpoint d (serving_idx state)) state.durability;
      go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* The integrity domain: background scrubbing of at-rest state and, on
   replicas, anti-entropy digest comparison against the primary.  All
   index access goes through mutator jobs (Wdigest / Wcheckpoint /
   Wrepair); this domain only does file I/O, networking, and
   bookkeeping, so it needs no reader slot. *)

let wait_flag state flag =
  let rec go () =
    let v = Atomic.get flag in
    if v <> 0 then v
    else if Atomic.get state.stop then 0
    else begin
      Unix.sleepf 0.005;
      go ()
    end
  in
  go ()

let scrub_pass state d =
  let dir = Checkpoint.dir d in
  let report = Scrub.scan ~max_bytes_per_s:state.cfg.scrub_max_bytes_per_s ~dir () in
  Atomic.incr state.scrub_passes;
  if report.Scrub.corrupt <> [] then begin
    ignore (Atomic.fetch_and_add state.scrub_corruptions (List.length report.Scrub.corrupt));
    (* The corrupt files may be the newest checkpoint or a sealed WAL
       segment the recovery chain still needs: re-checkpoint from the
       live (known-good) index first, and only quarantine once a fresh
       generation is durable.  On checkpoint failure the evidence
       stays in place and the next pass retries. *)
    let flag = Atomic.make 0 in
    Bqueue.push state.writeq (Wcheckpoint flag);
    if wait_flag state flag = 1 then
      ignore (Scrub.quarantine ~dir (List.map (fun c -> c.Scrub.file) report.Scrub.corrupt))
  end

let mutator_digest state =
  let box = Atomic.make None in
  Bqueue.push state.writeq (Wdigest box);
  let rec wait () =
    match Atomic.get box with
    | Some v -> Some v
    | None ->
      if Atomic.get state.stop then None
      else begin
        Unix.sleepf 0.005;
        wait ()
      end
  in
  wait ()

let anti_entropy_round state r suspicion =
  let rc = Replication.rconfig_of r in
  match
    Client.connect ~host:rc.Replication.primary_host ~timeout_s:5.0
      ~port:rc.Replication.primary_port ()
  with
  | exception _ -> ()
  | c ->
    Fun.protect ~finally:(fun () -> try Client.close c with _ -> ()) @@ fun () ->
    Atomic.incr state.anti_entropy_rounds;
    (match Client.call c Wire.Digest_request with
    | Wire.Digest_reply
        { generation = _; seq = pseq; offset = poff; n_nodes; root; label_edges; data_ranges; index_ranges }
      -> (
      match mutator_digest state with
      | None -> ()
      | Some (mine, (seq, off)) ->
        if pseq < 0 || seq < 0 || pseq <> seq || poff <> off then
          (* positions differ: ordinary replication lag, not
             divergence — digests are only comparable at equal
             write-stream positions *)
          ()
        else if n_nodes = mine.Integrity.n_nodes && root = mine.Integrity.root then
          suspicion := 0
        else begin
          (* Same position, different content.  One observation can
             still be an in-flight race; only a persistent mismatch
             counts as divergence. *)
          incr suspicion;
          if !suspicion >= 3 then begin
            suspicion := 0;
            Atomic.incr state.replica_divergences;
            let theirs =
              { Integrity.n_nodes; data_ranges; index_ranges; label_edges; root }
            in
            let dranges =
              if n_nodes <> mine.Integrity.n_nodes then []
              else Integrity.diff_data_ranges theirs mine
            in
            match dranges with
            | [] ->
              (* Node counts differ, or the data layer agrees and the
                 index layer itself has drifted (order-dependent D(k)
                 refinement).  Range repair cannot reconcile either —
                 bootstrap a bit-identical copy from the primary. *)
              Atomic.incr state.resyncs;
              Replication.force_resync r
            | dranges ->
              let dranges = List.filteri (fun i _ -> i < 16) dranges in
              (match Client.call c (Wire.Repair_fetch { ranges = dranges }) with
              | Wire.Repair_reply { sections; _ } ->
                let status = Atomic.make 0 and repaired = Atomic.make 0 in
                Bqueue.push state.writeq (Wrepair { sections; status; repaired });
                ignore (wait_flag state status)
              | _ -> ())
          end
        end)
    | _ -> ())

let integrity_loop state () =
  let cfg = state.cfg in
  let t0 = Unix.gettimeofday () in
  let next_scrub = ref (t0 +. cfg.scrub_interval_s) in
  let next_ae = ref (t0 +. cfg.anti_entropy_interval_s) in
  let suspicion = ref 0 in
  while not (Atomic.get state.stop) do
    Unix.sleepf 0.02;
    let t = Unix.gettimeofday () in
    (match state.durability with
    | Some d when cfg.scrub_interval_s > 0.0 && t >= !next_scrub ->
      next_scrub := Unix.gettimeofday () +. cfg.scrub_interval_s;
      (try scrub_pass state d with _ -> ())
    | _ -> ());
    match state.replica with
    | Some r
      when cfg.anti_entropy_interval_s > 0.0 && t >= !next_ae
           && not (Replication.is_promoted r) ->
      next_ae := Unix.gettimeofday () +. cfg.anti_entropy_interval_s;
      (try anti_entropy_round state r suspicion with _ -> ())
    | _ -> ()
  done

(* ------------------------------------------------------------------ *)
(* Main loop: accept, buffered reads, in-place frame extraction,
   inline reads, routing. *)

let be32 b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

(* A peer (client or replica) presenting a higher epoch is proof that
   a newer primary was elected: remember it, and if we believed we
   were primary, fence ourselves. *)
let observe_epoch state e =
  if e > Atomic.get state.max_seen then Atomic.set state.max_seen e;
  if e > Atomic.get state.epoch && Atomic.get state.is_primary then
    Atomic.set state.fenced true

(* Route one decoded request.  Single-shot reads (Ping, Query,
   Query_path, Stats) are answered inline by the event-loop domain
   against the lock-free snapshot: they are cheap, and skipping the
   queue handoff removes two cross-domain wakeups from the common
   path.  Their replies are buffered on the connection and flushed
   once per frame batch.  Batch queries (arbitrarily large) go to the
   worker domains; writes go to the mutator. *)
let dispatch state ~slot ~reader conn ~id (req : Wire.request) =
  if Atomic.get state.stop then
    buffer_response conn ~id
      (Wire.Error_reply { code = `Shutting_down; message = "server shutting down" })
  else begin
    match req with
    (* Answered inline by the main domain: version negotiation must
       precede everything and never queue, and a subscribe converts
       the connection into a replication stream. *)
    | Wire.Hello { version = v; epoch = e } ->
      observe_epoch state e;
      if v <> Wire.version then
        buffer_response conn ~id
          (Wire.Error_reply
             {
               code = `Version;
               message = Printf.sprintf "server speaks protocol version %d, client sent %d" Wire.version v;
             })
      else
        buffer_response conn ~id
          (Wire.Hello_reply
             {
               version = Wire.version;
               epoch = Atomic.get state.epoch;
               role = (if Atomic.get state.is_primary then Wire.Primary else Wire.Replica);
             })
    | Wire.Rep_subscribe { replica_id; epoch = e; seq; offset } ->
      observe_epoch state e;
      if e > Atomic.get state.epoch then
        (* The subscriber outranks us: refuse — following a deposed
           primary would fork its lineage. *)
        buffer_response conn ~id (Wire.Fenced { epoch = Atomic.get state.max_seen })
      else if not (Atomic.get state.is_primary) then
        buffer_response conn ~id (not_primary_reply state)
      else (
        match Atomic.get state.hub with
        | None ->
          buffer_response conn ~id
            (Wire.Error_reply
               { code = `App; message = "replication requires a data directory on the primary" })
        | Some hub ->
          (* Hand the fd over with a clean write buffer. *)
          flush_responses conn;
          conn.detached <- true;
          Replication.attach hub ~fd:conn.fd ~replica_id ~seq ~offset)
    | Wire.Ping | Wire.Query _ | Wire.Query_path _ | Wire.Stats | Wire.Query_planned _
    | Wire.Explain _ | Wire.Has_edge _ ->
      let resp =
        if stale_read state req then
          Wire.Error_reply { code = `Stale; message = "replica outside staleness bound" }
        else
          try with_snapshot state slot (fun snap -> handle_read state snap reader req)
          with e -> Wire.Error_reply { code = `App; message = Printexc.to_string e }
      in
      buffer_response conn ~id resp;
      Atomic.incr state.served;
      Atomic.incr state.served_inline
    | _ ->
      let p = { conn; id; req; arrival = Unix.gettimeofday () } in
      Atomic.incr state.in_flight;
      let pushed =
        match req with
        | Wire.Batch_query _ -> Bqueue.try_push state.readq p
        | _ -> Bqueue.try_push state.writeq (Wreq p)
      in
      if not pushed then begin
        Atomic.decr state.in_flight;
        Atomic.incr state.shed;
        buffer_response conn ~id Wire.Overloaded
      end
  end

let run ?(on_ready = fun (_ : int) -> ()) ?(handle_signals = true) ?durability ?replica_of
    ?hub_faults ?hub_heartbeat_s ?(repl_drop_nth = 0) cfg index =
  Index_graph.prepare_serving index;
  (* The second physical copy of the left-right pair, via the
     serialization round-trip (bit-for-bit equivalent content). *)
  let spare = Index_serial.of_string (Index_serial.to_string index) in
  let epoch0 =
    match durability with
    | Some d -> Replication.load_epoch ~dir:(Checkpoint.dir d)
    | None -> 0
  in
  let epoch = Atomic.make epoch0 in
  let max_seen = Atomic.make epoch0 in
  let mk_hub d = Replication.create_hub ?faults_for:hub_faults ?heartbeat_s:hub_heartbeat_s ~epoch d in
  let replica = Option.map (fun rc -> Replication.create_replica rc ~epoch ~max_seen) replica_of in
  let n_workers = max 1 cfg.workers in
  let state =
    {
      cfg;
      lock = Rw_lock.create ();
      serving = Atomic.make { idx = index; gen = 0 };
      slots = Array.init (n_workers + 1) (fun _ -> Atomic.make (-1));
      spare;
      lag = [];
      spare_dirty = false;
      swaps = Atomic.make 0;
      wake = (fun () -> ());
      evloop_backend = "";
      durability;
      readq = Bqueue.create cfg.queue_depth;
      writeq = Bqueue.create cfg.queue_depth;
      in_flight = Atomic.make 0;
      stop = Atomic.make false;
      served = Atomic.make 0;
      served_inline = Atomic.make 0;
      shed = Atomic.make 0;
      proto_errors = Atomic.make 0;
      deadline_expired = Atomic.make 0;
      started_at = Unix.gettimeofday ();
      evicted_slow_clients = Atomic.make 0;
      rejected_at_admission = Atomic.make 0;
      epoch;
      max_seen;
      is_primary = Atomic.make (replica = None);
      fenced = Atomic.make false;
      hub =
        Atomic.make
          (match (durability, replica) with Some d, None -> Some (mk_hub d) | _ -> None);
      mk_hub;
      replica;
      repl_apply_errors = Atomic.make 0;
      integrity = Integrity.create ();
      digest_pos =
        Atomic.make
          (match (durability, replica) with
          | Some d, None -> Checkpoint.wal_position d
          | _ -> (-1, 0));
      repl_records_seen = Atomic.make 0;
      repl_drop_nth;
      scrub_passes = Atomic.make 0;
      scrub_corruptions = Atomic.make 0;
      ranges_repaired = Atomic.make 0;
      replica_divergences = Atomic.make 0;
      resyncs = Atomic.make 0;
      anti_entropy_rounds = Atomic.make 0;
      vcaches = Atomic.make [];
      stats_mu = Mutex.create ();
      stats_srcs = [];
      planned = Atomic.make 0;
      planned_index_scans = Atomic.make 0;
      planned_raw_scans = Atomic.make 0;
      explains = Atomic.make 0;
      plan_fallbacks = Atomic.make 0;
    }
  in
  Integrity.attach state.integrity index;
  Integrity.attach state.integrity state.spare;
  let ev =
    match Evloop.create () with
    | Ok ev -> ev
    | Error msg -> failwith ("Server: event loop: " ^ msg)
  in
  state.evloop_backend <- Evloop.backend_name ev;
  (* Self-pipe: lets the mutator (Shutdown request) and signal
     handlers wake a loop that is parked in the kernel with no tick. *)
  let pipe_r, pipe_w = Unix.pipe () in
  Unix.set_nonblock pipe_r;
  Unix.set_nonblock pipe_w;
  let wake () =
    try ignore (Unix.write_substring pipe_w "x" 0 1)
    with Unix.Unix_error _ -> ()
  in
  state.wake <- wake;
  Evloop.add ev pipe_r Evloop.rd;
  if Sys.os_type = "Unix" then ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  if handle_signals then
    List.iter
      (fun s ->
        Sys.set_signal s
          (Sys.Signal_handle
             (fun _ ->
               Atomic.set state.stop true;
               wake ())))
      [ Sys.sigterm; Sys.sigint ];
  let listen_fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt listen_fd SO_REUSEADDR true;
  Unix.bind listen_fd (ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
  Unix.listen listen_fd 64;
  Evloop.add ev listen_fd Evloop.rd;
  let port =
    match Unix.getsockname listen_fd with
    | ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let workers =
    Array.init n_workers (fun i -> Domain.spawn (worker_loop state state.slots.(i + 1)))
  in
  let mutator = Domain.spawn (mutator_loop state) in
  let integrity_domain =
    if
      (cfg.scrub_interval_s > 0.0 && Option.is_some durability)
      || (cfg.anti_entropy_interval_s > 0.0 && Option.is_some replica)
    then Some (Domain.spawn (integrity_loop state))
    else None
  in
  (* The tailer feeds the mutator through a blocking push: replication
     events are never shed, they apply FIFO with client writes. *)
  Option.iter
    (fun r -> Replication.start_replica r ~push:(fun ev -> Bqueue.push state.writeq (Wrepl ev)))
    replica;
  on_ready port;
  let main_slot = state.slots.(0) in
  let main_reader = new_reader () in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let close_conn conn =
    Mutex.lock conn.wmu;
    conn.closed <- true;
    Mutex.unlock conn.wmu;
    Evloop.remove ev conn.fd;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    Hashtbl.remove conns conn.fd
  in
  (* Admission refusal: one best-effort Overloaded frame (id 0 — the
     peer has not spoken yet), then close.  The write is fire-and-
     forget; a full socket buffer on a connection we are rejecting is
     not worth waiting on. *)
  let overloaded_frame =
    let b = Obuf.create 16 in
    Wire.encode_response b ~id:0 Wire.Overloaded;
    Bytes.sub (Obuf.base b) 0 (Obuf.length b)
  in
  let accept_new () =
    match Unix.accept listen_fd with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR | ECONNABORTED), _, _) -> ()
    | fd, _addr ->
      if cfg.max_conns > 0 && Hashtbl.length conns >= cfg.max_conns then begin
        Atomic.incr state.rejected_at_admission;
        (try ignore (Unix.write fd overloaded_frame 0 (Bytes.length overloaded_frame))
         with Unix.Unix_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else begin
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
        Evloop.add ev fd Evloop.rd;
        Hashtbl.replace conns fd
          {
            fd;
            rbuf = Bytes.create 4096;
            rlen = 0;
            wmu = Mutex.create ();
            wbuf = Obuf.create 1024;
            closed = false;
            detached = false;
            last_active = Unix.gettimeofday ();
            frame_start = 0.0;
          }
      end
  in
  (* Extract every complete frame from the connection buffer — decoded
     in place, no per-frame payload copy — then compact what remains
     to the front and flush the batched replies with one write. *)
  let process_frames conn =
    let rec go off =
      if conn.closed || conn.detached || conn.rlen - off < 4 then off
      else begin
        let len = be32 conn.rbuf off in
        if len > cfg.max_frame then begin
          buffer_response conn ~id:0
            (Wire.Error_reply
               {
                 code = `Protocol;
                 message = Printf.sprintf "frame of %d bytes exceeds limit %d" len cfg.max_frame;
               });
          flush_responses conn;
          Atomic.incr state.proto_errors;
          close_conn conn;
          off
        end
        else if conn.rlen - off >= 4 + len then begin
          (* The transient string view is only read between here and
             the end of decoding; decoded requests copy out what they
             retain. *)
          (match
             Wire.decode_request_at (Bytes.unsafe_to_string conn.rbuf) ~pos:(off + 4) ~len
           with
          | Error msg ->
            Atomic.incr state.proto_errors;
            buffer_response conn ~id:0 (Wire.Error_reply { code = `Protocol; message = msg })
          | Ok { id; msg = req } -> dispatch state ~slot:main_slot ~reader:main_reader conn ~id req);
          go (off + 4 + len)
        end
        else off
      end
    in
    let consumed = go 0 in
    if (not conn.closed) && not conn.detached then begin
      if consumed > 0 then begin
        Bytes.blit conn.rbuf consumed conn.rbuf 0 (conn.rlen - consumed);
        conn.rlen <- conn.rlen - consumed
      end;
      flush_responses conn
    end
  in
  let chunk = Bytes.create 65536 in
  let service_read conn =
    match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> close_conn conn
    | 0 -> close_conn conn
    | n ->
      conn.last_active <- Unix.gettimeofday ();
      let need = conn.rlen + n in
      if Bytes.length conn.rbuf < need then begin
        let bigger = Bytes.create (max need (2 * Bytes.length conn.rbuf)) in
        Bytes.blit conn.rbuf 0 bigger 0 conn.rlen;
        conn.rbuf <- bigger
      end;
      Bytes.blit chunk 0 conn.rbuf conn.rlen n;
      conn.rlen <- need;
      process_frames conn;
      (* Read-progress accounting: an empty buffer means no frame is
         pending; otherwise the deadline clock starts at the first
         byte of the incomplete frame and is NOT refreshed by further
         trickle — that is exactly the slow-loris shape. *)
      if conn.rlen = 0 then conn.frame_start <- 0.0
      else if conn.frame_start = 0.0 then conn.frame_start <- conn.last_active;
      (* A subscribe detached this connection: the hub's sender owns
         the fd now; forget it without closing. *)
      if conn.detached then begin
        Evloop.remove ev conn.fd;
        Hashtbl.remove conns conn.fd
      end
  in
  let sweep_idle () =
    if cfg.idle_timeout_s > 0.0 || cfg.read_progress_deadline_s > 0.0 then begin
      let now = Unix.gettimeofday () in
      let idle = ref [] and loris = ref [] in
      Hashtbl.iter
        (fun _ c ->
          if
            cfg.read_progress_deadline_s > 0.0 && c.frame_start > 0.0
            && now -. c.frame_start > cfg.read_progress_deadline_s
          then loris := c :: !loris
          else if cfg.idle_timeout_s > 0.0 && now -. c.last_active > cfg.idle_timeout_s then
            idle := c :: !idle)
        conns;
      List.iter
        (fun c ->
          Atomic.incr state.evicted_slow_clients;
          close_conn c)
        !loris;
      List.iter close_conn !idle
    end
  in
  (* No fixed tick: park until readiness, or until the earliest
     idle-connection or read-progress deadline if either sweep is on. *)
  let next_timeout_ms () =
    if
      (cfg.idle_timeout_s <= 0.0 && cfg.read_progress_deadline_s <= 0.0)
      || Hashtbl.length conns = 0
    then -1
    else begin
      let next =
        Hashtbl.fold
          (fun _ c acc ->
            let acc =
              if cfg.idle_timeout_s > 0.0 then
                Float.min acc (c.last_active +. cfg.idle_timeout_s)
              else acc
            in
            if cfg.read_progress_deadline_s > 0.0 && c.frame_start > 0.0 then
              Float.min acc (c.frame_start +. cfg.read_progress_deadline_s)
            else acc)
          conns infinity
      in
      if next = infinity then -1
      else begin
        let ms = (next -. Unix.gettimeofday ()) *. 1000.0 in
        if ms <= 0.0 then 0 else int_of_float ms + 20
      end
    end
  in
  let drain_pipe () =
    let scratch = Bytes.create 64 in
    let rec go () =
      match Unix.read pipe_r scratch 0 64 with
      | n when n > 0 -> go ()
      | _ -> ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    in
    go ()
  in
  let accepting = ref true in
  let rec loop () =
    if Atomic.get state.stop then begin
      if !accepting then begin
        accepting := false;
        Evloop.remove ev listen_fd;
        (try Unix.close listen_fd with Unix.Unix_error _ -> ());
        (* Stop the tailer before draining so no new replication
           events land in the write queue mid-shutdown. *)
        Option.iter Replication.stop_replica state.replica
      end;
      (* Drain: everything already admitted gets its answer. *)
      if
        not
          (Bqueue.is_empty state.readq && Bqueue.is_empty state.writeq
          && Atomic.get state.in_flight = 0)
      then begin
        Unix.sleepf 0.005;
        loop ()
      end
    end
    else begin
      ignore
        (Evloop.wait ev ~timeout_ms:(next_timeout_ms ()) (fun fd _mask ->
             if fd = pipe_r then drain_pipe ()
             else if fd = listen_fd then (if !accepting then accept_new ())
             else
               match Hashtbl.find_opt conns fd with
               | Some conn -> service_read conn
               | None -> ()));
      sweep_idle ();
      loop ()
    end
  in
  loop ();
  Bqueue.close state.readq;
  Bqueue.close state.writeq;
  Array.iter Domain.join workers;
  Domain.join mutator;
  Option.iter Domain.join integrity_domain;
  Option.iter Replication.stop_hub (Atomic.get state.hub);
  (* Sockets go first: a failing final snapshot (disk full, say) must
     not leave descriptors open or the drain half-finished — it turns
     into an [Error _] the caller can exit nonzero on. *)
  Hashtbl.iter
    (fun _ c ->
      Mutex.lock c.wmu;
      c.closed <- true;
      Mutex.unlock c.wmu;
      try Unix.close c.fd with Unix.Unix_error _ -> ())
    conns;
  (* The mutator has been joined; take the write side anyway so the
     final checkpoint can never interleave with a straggling
     mutation path. *)
  Rw_lock.write state.lock @@ fun () ->
  let final_durability =
    match state.durability with
    | None -> Ok ()
    | Some d -> Checkpoint.close d (serving_idx state)
  in
  let final_snapshot =
    match cfg.snapshot_path with
    | None -> Ok ()
    | Some path -> (
      try
        Index_serial.save path (serving_idx state);
        Ok ()
      with e -> Error (Printf.sprintf "final snapshot %s: %s" path (Printexc.to_string e)))
  in
  match (final_durability, final_snapshot) with
  | Ok (), Ok () -> Ok ()
  | Error a, Error b -> Error (a ^ "; " ^ b)
  | Error e, _ | _, Error e -> Error e
