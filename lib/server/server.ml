open Dkindex_graph
open Dkindex_core
module Cost = Dkindex_pathexpr.Cost

type config = {
  host : string;
  port : int;
  workers : int;
  queue_depth : int;
  deadline_s : float;
  idle_timeout_s : float;
  max_frame : int;
  snapshot_path : string option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7411;
    workers = 2;
    queue_depth = 256;
    deadline_s = 10.0;
    idle_timeout_s = 60.0;
    max_frame = Wire.max_frame_default;
    snapshot_path = None;
  }

(* ------------------------------------------------------------------ *)
(* Bounded multi-producer/multi-consumer queue.  [try_push] sheds when
   full (the admission-control point); [pop] blocks and returns [None]
   once the queue is closed and drained. *)

module Bqueue = struct
  type 'a t = {
    mu : Mutex.t;
    nonempty : Condition.t;
    notfull : Condition.t;
    q : 'a Queue.t;
    cap : int;
    mutable closed : bool;
  }

  let create cap =
    {
      mu = Mutex.create ();
      nonempty = Condition.create ();
      notfull = Condition.create ();
      q = Queue.create ();
      cap;
      closed = false;
    }

  let try_push t x =
    Mutex.lock t.mu;
    let ok = (not t.closed) && Queue.length t.q < t.cap in
    if ok then begin
      Queue.push x t.q;
      Condition.signal t.nonempty
    end;
    Mutex.unlock t.mu;
    ok

  (* Blocking push for producers that must never shed (the replication
     tailer feeding the mutator).  Silently drops once closed — by
     then the consumer is gone and the producer is shutting down. *)
  let push t x =
    Mutex.lock t.mu;
    while (not t.closed) && Queue.length t.q >= t.cap do
      Condition.wait t.notfull t.mu
    done;
    if not t.closed then begin
      Queue.push x t.q;
      Condition.signal t.nonempty
    end;
    Mutex.unlock t.mu

  let pop t =
    Mutex.lock t.mu;
    while Queue.is_empty t.q && not t.closed do
      Condition.wait t.nonempty t.mu
    done;
    let r = if Queue.is_empty t.q then None else Some (Queue.pop t.q) in
    Condition.signal t.notfull;
    Mutex.unlock t.mu;
    r

  let close t =
    Mutex.lock t.mu;
    t.closed <- true;
    Condition.broadcast t.nonempty;
    Condition.broadcast t.notfull;
    Mutex.unlock t.mu

  let is_empty t =
    Mutex.lock t.mu;
    let r = Queue.is_empty t.q in
    Mutex.unlock t.mu;
    r

  let length t =
    Mutex.lock t.mu;
    let r = Queue.length t.q in
    Mutex.unlock t.mu;
    r
end

(* ------------------------------------------------------------------ *)
(* Connections.  The main domain owns the read side (buffer, frame
   extraction) and is the only closer of the file descriptor; any
   domain may write a response under [wmu].  [closed] is flipped under
   [wmu] before the descriptor is closed, so a writer holding [wmu]
   can never race a close into a reused descriptor. *)

type conn = {
  fd : Unix.file_descr;
  mutable rbuf : Bytes.t;
  mutable rlen : int;
  wmu : Mutex.t;
  mutable closed : bool;
  mutable detached : bool;
      (* handed to the replication hub: the main loop stops reading,
         never closes the fd, and drops the conn from its table *)
  mutable last_active : float;
}

type pending = { conn : conn; id : int; req : Wire.request; arrival : float }

(* The write queue carries client requests and replication-stream
   events; both are applied by the single mutator domain in FIFO
   order, so replica reads observe mutations in primary order. *)
type wjob = Wreq of pending | Wrepl of Replication.event

type state = {
  cfg : config;
  lock : Rw_lock.t;
  mutable index : Index_graph.t;
  durability : Checkpoint.t option;
  readq : pending Bqueue.t;
  writeq : wjob Bqueue.t;
  in_flight : int Atomic.t;
  stop : bool Atomic.t;
  served : int Atomic.t;
  shed : int Atomic.t;
  proto_errors : int Atomic.t;
  deadline_expired : int Atomic.t;
  (* replication / failover *)
  epoch : int Atomic.t;  (* our primary epoch (a replica carries its lineage's) *)
  max_seen : int Atomic.t;  (* highest epoch observed from any peer *)
  is_primary : bool Atomic.t;
  fenced : bool Atomic.t;  (* a peer proved a newer primary exists *)
  hub : Replication.hub option Atomic.t;
  mk_hub : Checkpoint.t -> Replication.hub;  (* for promotion *)
  replica : Replication.replica option;
  repl_apply_errors : int Atomic.t;
}

(* Write every byte to a non-blocking socket, waiting for writability
   between partial writes.  A peer that stops reading for ~30 s is
   treated as dead (EPIPE) rather than wedging the writing domain. *)
let write_all fd b off len =
  let stalls = ref 0 in
  let off = ref off and len = ref len in
  while !len > 0 do
    match Unix.write fd b !off !len with
    | n ->
      off := !off + n;
      len := !len - n;
      stalls := 0
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
      incr stalls;
      if !stalls > 30 then raise (Unix.Unix_error (EPIPE, "write", "stalled peer"));
      ignore (Unix.select [] [ fd ] [] 1.0)
    | exception Unix.Unix_error (EINTR, _, _) -> ()
  done

let send_response conn ~id resp =
  let buf = Buffer.create 256 in
  Wire.encode_response buf ~id resp;
  let b = Buffer.to_bytes buf in
  Mutex.lock conn.wmu;
  Fun.protect ~finally:(fun () -> Mutex.unlock conn.wmu) @@ fun () ->
  if not conn.closed then
    try write_all conn.fd b 0 (Bytes.length b)
    with Unix.Unix_error _ -> conn.closed <- true

(* ------------------------------------------------------------------ *)
(* Query workers *)

let empty_result =
  { Query_eval.nodes = []; cost = { Cost.index_visits = 0; data_visits = 0 }; n_candidates = 0; n_certain = 0 }

let wire_result (r : Query_eval.result) : Wire.query_result =
  {
    nodes = Array.of_list r.nodes;
    index_visits = r.cost.Cost.index_visits;
    data_visits = r.cost.Cost.data_visits;
    n_candidates = r.n_candidates;
    n_certain = r.n_certain;
  }

(* Per-worker validation cache, re-created whenever the served index
   is replaced wholesale (add_subgraph, demote). *)
let worker_cache cache_ref idx =
  match !cache_ref with
  | Some c when Validation_cache.index c == idx -> c
  | _ ->
    let c = Validation_cache.create idx in
    cache_ref := Some c;
    c

let eval_labels ?cache idx labels =
  let pool = Data_graph.pool (Index_graph.data idx) in
  let codes = List.map (Label.Pool.find_opt pool) labels in
  if labels = [] || List.exists Option.is_none codes then empty_result
  else Query_eval.eval_path ?cache idx (Array.of_list (List.map Option.get codes))

let stats_kvs state idx =
  let st = Index_stats.compute idx in
  let b v = if v then "true" else "false" in
  [
    ("n_index_nodes", string_of_int st.Index_stats.n_nodes);
    ("n_index_edges", string_of_int st.n_edges);
    ("n_data_nodes", string_of_int st.n_data_nodes);
    ("compression", Printf.sprintf "%.3f" st.compression);
    ("largest_extent", string_of_int st.largest_extent);
    ("generation", string_of_int (Index_graph.generation idx));
    ("served", string_of_int (Atomic.get state.served));
    ("shed", string_of_int (Atomic.get state.shed));
    ("protocol_errors", string_of_int (Atomic.get state.proto_errors));
    ("deadline_expired", string_of_int (Atomic.get state.deadline_expired));
    ("read_queue_depth", string_of_int (Bqueue.length state.readq));
    ("write_queue_depth", string_of_int (Bqueue.length state.writeq));
    ("queue_capacity", string_of_int state.cfg.queue_depth);
    ("in_flight", string_of_int (Atomic.get state.in_flight));
    ("workers", string_of_int state.cfg.workers);
    ("role", if Atomic.get state.is_primary then "primary" else "replica");
    ("epoch", string_of_int (Atomic.get state.epoch));
    ("max_seen_epoch", string_of_int (Atomic.get state.max_seen));
    ("fenced", b (Atomic.get state.fenced));
    ("repl_apply_errors", string_of_int (Atomic.get state.repl_apply_errors));
    ("durability", match state.durability with Some _ -> "wal+checkpoint" | None -> "none");
  ]
  @ (match state.durability with Some d -> Checkpoint.stats d | None -> [])
  @ (match Atomic.get state.hub with Some h -> Replication.hub_stats h | None -> [])
  @ (match state.replica with Some r -> Replication.replica_stats r | None -> [])

let handle_read state cache_ref req : Wire.response =
  let idx = state.index in
  let cache flags = if flags.Wire.no_cache then None else Some (worker_cache cache_ref idx) in
  match req with
  | Wire.Ping -> Wire.Pong
  | Wire.Stats -> Wire.Stats_reply (stats_kvs state idx)
  | Wire.Query { flags; expr } ->
    Wire.Result (wire_result (Query_eval.eval_expr ?cache:(cache flags) idx expr))
  | Wire.Query_path { flags; labels } ->
    Wire.Result (wire_result (eval_labels ?cache:(cache flags) idx labels))
  | Wire.Batch_query { flags; paths } ->
    let cache = cache flags in
    Wire.Batch_result
      (Array.of_list (List.map (fun p -> wire_result (eval_labels ?cache idx p)) paths))
  | _ -> Wire.Error_reply { code = `Protocol; message = "write request on read path" }

let expired state p =
  state.cfg.deadline_s > 0.0 && Unix.gettimeofday () -. p.arrival > state.cfg.deadline_s

let deadline_reply state =
  Atomic.incr state.deadline_expired;
  Wire.Error_reply { code = `Deadline; message = "deadline exceeded" }

(* Ping and Stats stay answerable on a stale replica (they are how an
   operator finds out it is stale); queries are refused. *)
let stale_read state req =
  match state.replica with
  | Some r -> (
    match req with
    | Wire.Ping | Wire.Stats -> false
    | _ -> Replication.stale r)
  | None -> false

let worker_loop state () =
  let cache_ref = ref None in
  let rec go () =
    match Bqueue.pop state.readq with
    | None -> ()
    | Some p ->
      (if not p.conn.closed then
         let resp =
           if expired state p then deadline_reply state
           else if stale_read state p.req then
             Wire.Error_reply { code = `Stale; message = "replica outside staleness bound" }
           else
             try Rw_lock.read state.lock (fun () -> handle_read state cache_ref p.req)
             with e -> Wire.Error_reply { code = `App; message = Printexc.to_string e }
         in
         send_response p.conn ~id:p.id resp;
         Atomic.incr state.served);
      Atomic.decr state.in_flight;
      go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* The mutator: all updates, applied in FIFO order under the write
   lock.  [prepare_serving] runs before the lock is released so query
   workers never materialize lazy index state concurrently. *)

(* The loggable mutations.  Everything the WAL replays goes through
   {!Checkpoint.apply_mutation}, the same code path recovery uses, so
   live application and replay cannot diverge. *)
let mutation_of_req : Wire.request -> Wal.mutation option = function
  | Wire.Add_edge { u; v } -> Some (Wal.Add_edge { u; v })
  | Wire.Remove_edge { u; v } -> Some (Wal.Remove_edge { u; v })
  | Wire.Add_subgraph { graph; reqs } -> Some (Wal.Add_subgraph { graph; reqs })
  | Wire.Promote pairs -> Some (Wal.Promote pairs)
  | Wire.Demote reqs -> Some (Wal.Demote reqs)
  | _ -> None

let publish state idx' =
  Index_graph.prepare_serving idx';
  state.index <- idx'

let not_primary_reply state : Wire.response =
  match state.replica with
  | Some r ->
    let rc = Replication.rconfig_of r in
    Wire.Not_primary { host = rc.Replication.primary_host; port = rc.Replication.primary_port }
  | None -> Wire.Not_primary { host = state.cfg.host; port = state.cfg.port }

(* Promotion (operator request or failover watchdog), run by the
   mutator under the write lock.  Epoch = 1 + the highest epoch
   observed anywhere, persisted before the role flips so a restart
   cannot resurrect the old epoch; then the replica tailer is retired
   and (with a data directory) a hub is opened for new subscribers. *)
let do_promote state : Wire.response =
  if Atomic.get state.is_primary then
    Wire.Error_reply { code = `App; message = "already primary" }
  else begin
    let e = max (Atomic.get state.epoch) (Atomic.get state.max_seen) + 1 in
    (match state.durability with
    | Some d -> (
      (try Replication.store_epoch ~dir:(Checkpoint.dir d) e
       with _ -> ());
      (* Start the new reign on a clean generation: subscribers to the
         new primary bootstrap from a checkpoint that includes
         everything replicated so far. *)
      match Checkpoint.checkpoint_now d state.index with
      | Ok () | Error _ -> ())
    | None -> ());
    Atomic.set state.epoch e;
    Atomic.set state.max_seen e;
    Option.iter Replication.mark_promoted state.replica;
    (match (state.durability, Atomic.get state.hub) with
    | Some d, None -> Atomic.set state.hub (Some (state.mk_hub d))
    | _ -> ());
    Atomic.set state.fenced false;
    Atomic.set state.is_primary true;
    Wire.Ok_reply { generation = Index_graph.generation state.index; epoch = e }
  end

let apply_write state (p : pending) : Wire.response =
  let ok () =
    Wire.Ok_reply
      { generation = Index_graph.generation state.index; epoch = Atomic.get state.epoch }
  in
  let app msg : Wire.response = Error_reply { code = `App; message = msg } in
  try
    match mutation_of_req p.req with
    | Some m -> (
      if not (Atomic.get state.is_primary) then not_primary_reply state
      else if Atomic.get state.fenced then Wire.Fenced { epoch = Atomic.get state.max_seen }
      else
        match state.durability with
        | Some d when Checkpoint.read_only d -> Wire.Read_only
        | durability -> (
          let idx' = Checkpoint.apply_mutation state.index m in
          (* Log after applying, before acknowledging: the WAL holds
             only mutations that succeeded, and nothing is acknowledged
             until it is logged.  A WAL failure degrades the server to
             read-only — the in-memory application stands (it can be at
             most this one unacknowledged mutation ahead of the durable
             state) and no further writes are accepted. *)
          match durability with
          | None ->
            publish state idx';
            ok ()
          | Some d -> (
            match Checkpoint.log_mutation d m with
            | () ->
              publish state idx';
              ok ()
            | exception e ->
              Checkpoint.note_wal_failure d (Printexc.to_string e);
              publish state idx';
              Wire.Read_only)))
    | None -> (
      match p.req with
      | Wire.Snapshot -> (
        match (state.durability, state.cfg.snapshot_path) with
        | Some d, _ -> (
          match Checkpoint.checkpoint_now d state.index with
          | Ok () -> ok ()
          | Error msg -> app ("checkpoint failed: " ^ msg))
        | None, Some path ->
          Index_serial.save path state.index;
          ok ()
        | None, None -> app "no snapshot path configured")
      | Wire.Promote_primary -> do_promote state
      | Wire.Shutdown ->
        let r = ok () in
        Atomic.set state.stop true;
        r
      | _ -> app "read request on write path")
  with
  | Failure msg | Invalid_argument msg -> app msg
  | e -> app (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Applying the replication stream.  Mutations ride the same
   [Checkpoint.apply_mutation] path as client writes and WAL replay,
   and are logged to the replica's own WAL so a promoted replica is a
   fully durable primary.  After a reconnect the stream can replay
   bytes already applied; the WAL encoding is canonical, so each
   record's byte extent re-derives exactly and anything at or below
   the applied position is skipped. *)

let apply_repl state scratch (ev : Replication.event) =
  match ev with
  | Replication.Ev_promote -> (
    match state.replica with
    | Some r when not (Replication.is_promoted r) ->
      ignore (Rw_lock.write state.lock (fun () -> do_promote state))
    | _ -> ())
  | Replication.Ev_snapshot { index; epoch; seq } -> (
    match state.replica with
    | Some r when not (Replication.is_promoted r) -> (
      match Index_serial.of_string index with
      | idx' ->
        Rw_lock.write state.lock (fun () -> publish state idx');
        (match state.durability with
        | Some d -> ( match Checkpoint.checkpoint_now d state.index with Ok () | Error _ -> ())
        | None -> ());
        Replication.note_installed r ~epoch ~seq
      | exception _ ->
        (* A snapshot that does not parse leaves us behind; the next
           reconnect bootstraps again. *)
        Atomic.incr state.repl_apply_errors)
    | _ -> ())
  | Replication.Ev_mutations { muts; epoch = _; seq; base; offset } -> (
    match state.replica with
    | Some r when not (Replication.is_promoted r) ->
      let aseq, aoff = Replication.applied_position r in
      if seq < aseq || (seq = aseq && offset <= aoff) then ()
      else begin
        let applied = ref 0 in
        Rw_lock.write state.lock (fun () ->
            let pos = ref base in
            List.iter
              (fun m ->
                Buffer.clear scratch;
                Wal.encode_mutation scratch m;
                let rec_end = !pos + Buffer.length scratch in
                (if seq > aseq || rec_end > aoff then
                   match Checkpoint.apply_mutation state.index m with
                   | idx' ->
                     state.index <- idx';
                     incr applied;
                     (match state.durability with
                     | Some d when not (Checkpoint.read_only d) -> (
                       try Checkpoint.log_mutation d m
                       with e -> Checkpoint.note_wal_failure d (Printexc.to_string e))
                     | _ -> ())
                   | exception _ ->
                     (* The primary applied this successfully; failing
                        here means divergence.  Count it and keep the
                        stream moving. *)
                     Atomic.incr state.repl_apply_errors);
                pos := rec_end)
              muts;
            Index_graph.prepare_serving state.index);
        Replication.note_applied r ~seq ~offset ~n:!applied;
        Option.iter (fun d -> Checkpoint.maybe_checkpoint d state.index) state.durability
      end
    | _ -> ())

let mutator_loop state () =
  let scratch = Buffer.create 256 in
  let rec go () =
    match Bqueue.pop state.writeq with
    | None -> ()
    | Some (Wrepl ev) ->
      apply_repl state scratch ev;
      go ()
    | Some (Wreq p) ->
      (if not p.conn.closed then
         let resp =
           if expired state p then deadline_reply state
           else Rw_lock.write state.lock (fun () -> apply_write state p)
         in
         send_response p.conn ~id:p.id resp;
         Atomic.incr state.served);
      Atomic.decr state.in_flight;
      Option.iter (fun d -> Checkpoint.maybe_checkpoint d state.index) state.durability;
      go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Main loop: accept, buffered reads, frame extraction, routing. *)

let be32 b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

(* A peer (client or replica) presenting a higher epoch is proof that
   a newer primary was elected: remember it, and if we believed we
   were primary, fence ourselves. *)
let observe_epoch state e =
  if e > Atomic.get state.max_seen then Atomic.set state.max_seen e;
  if e > Atomic.get state.epoch && Atomic.get state.is_primary then
    Atomic.set state.fenced true

let dispatch state conn payload =
  match Wire.decode_request payload with
  | Error msg ->
    Atomic.incr state.proto_errors;
    send_response conn ~id:0 (Wire.Error_reply { code = `Protocol; message = msg })
  | Ok { id; msg = req } ->
    if Atomic.get state.stop then
      send_response conn ~id
        (Wire.Error_reply { code = `Shutting_down; message = "server shutting down" })
    else begin
      match req with
      (* Answered inline by the main domain: version negotiation must
         precede everything and never queue, and a subscribe converts
         the connection into a replication stream. *)
      | Wire.Hello { version = v; epoch = e } ->
        observe_epoch state e;
        if v <> Wire.version then
          send_response conn ~id
            (Wire.Error_reply
               {
                 code = `Version;
                 message = Printf.sprintf "server speaks protocol version %d, client sent %d" Wire.version v;
               })
        else
          send_response conn ~id
            (Wire.Hello_reply
               {
                 version = Wire.version;
                 epoch = Atomic.get state.epoch;
                 role = (if Atomic.get state.is_primary then Wire.Primary else Wire.Replica);
               })
      | Wire.Rep_subscribe { replica_id; epoch = e; seq; offset } ->
        observe_epoch state e;
        if e > Atomic.get state.epoch then
          (* The subscriber outranks us: refuse — following a deposed
             primary would fork its lineage. *)
          send_response conn ~id (Wire.Fenced { epoch = Atomic.get state.max_seen })
        else if not (Atomic.get state.is_primary) then
          send_response conn ~id (not_primary_reply state)
        else (
          match Atomic.get state.hub with
          | None ->
            send_response conn ~id
              (Wire.Error_reply
                 { code = `App; message = "replication requires a data directory on the primary" })
          | Some hub ->
            conn.detached <- true;
            Replication.attach hub ~fd:conn.fd ~replica_id ~seq ~offset)
      | _ ->
        let p = { conn; id; req; arrival = Unix.gettimeofday () } in
        Atomic.incr state.in_flight;
        let pushed =
          match req with
          | Wire.Ping | Wire.Query _ | Wire.Query_path _ | Wire.Batch_query _ | Wire.Stats ->
            Bqueue.try_push state.readq p
          | _ -> Bqueue.try_push state.writeq (Wreq p)
        in
        if not pushed then begin
          Atomic.decr state.in_flight;
          Atomic.incr state.shed;
          send_response conn ~id Wire.Overloaded
        end
    end

let run ?(on_ready = fun (_ : int) -> ()) ?(handle_signals = true) ?durability ?replica_of
    ?hub_faults ?hub_heartbeat_s cfg index =
  Index_graph.prepare_serving index;
  let epoch0 =
    match durability with
    | Some d -> Replication.load_epoch ~dir:(Checkpoint.dir d)
    | None -> 0
  in
  let epoch = Atomic.make epoch0 in
  let max_seen = Atomic.make epoch0 in
  let mk_hub d = Replication.create_hub ?faults_for:hub_faults ?heartbeat_s:hub_heartbeat_s ~epoch d in
  let replica = Option.map (fun rc -> Replication.create_replica rc ~epoch ~max_seen) replica_of in
  let state =
    {
      cfg;
      lock = Rw_lock.create ();
      index;
      durability;
      readq = Bqueue.create cfg.queue_depth;
      writeq = Bqueue.create cfg.queue_depth;
      in_flight = Atomic.make 0;
      stop = Atomic.make false;
      served = Atomic.make 0;
      shed = Atomic.make 0;
      proto_errors = Atomic.make 0;
      deadline_expired = Atomic.make 0;
      epoch;
      max_seen;
      is_primary = Atomic.make (replica = None);
      fenced = Atomic.make false;
      hub =
        Atomic.make
          (match (durability, replica) with Some d, None -> Some (mk_hub d) | _ -> None);
      mk_hub;
      replica;
      repl_apply_errors = Atomic.make 0;
    }
  in
  if Sys.os_type = "Unix" then ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  if handle_signals then
    List.iter
      (fun s -> Sys.set_signal s (Sys.Signal_handle (fun _ -> Atomic.set state.stop true)))
    [ Sys.sigterm; Sys.sigint ];
  let listen_fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt listen_fd SO_REUSEADDR true;
  Unix.bind listen_fd (ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
  Unix.listen listen_fd 64;
  let port =
    match Unix.getsockname listen_fd with
    | ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let workers =
    Array.init (max 1 cfg.workers) (fun _ -> Domain.spawn (worker_loop state))
  in
  let mutator = Domain.spawn (mutator_loop state) in
  (* The tailer feeds the mutator through a blocking push: replication
     events are never shed, they apply FIFO with client writes. *)
  Option.iter
    (fun r -> Replication.start_replica r ~push:(fun ev -> Bqueue.push state.writeq (Wrepl ev)))
    replica;
  on_ready port;
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let close_conn conn =
    Mutex.lock conn.wmu;
    conn.closed <- true;
    Mutex.unlock conn.wmu;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    Hashtbl.remove conns conn.fd
  in
  let accept_new () =
    match Unix.accept listen_fd with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR | ECONNABORTED), _, _) -> ()
    | fd, _addr ->
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
      Hashtbl.replace conns fd
        {
          fd;
          rbuf = Bytes.create 4096;
          rlen = 0;
          wmu = Mutex.create ();
          closed = false;
          detached = false;
          last_active = Unix.gettimeofday ();
        }
  in
  (* Extract every complete frame from the connection buffer, then
     compact what remains to the front. *)
  let process_frames conn =
    let rec go off =
      if conn.closed || conn.detached || conn.rlen - off < 4 then off
      else begin
        let len = be32 conn.rbuf off in
        if len > cfg.max_frame then begin
          send_response conn ~id:0
            (Wire.Error_reply
               {
                 code = `Protocol;
                 message = Printf.sprintf "frame of %d bytes exceeds limit %d" len cfg.max_frame;
               });
          Atomic.incr state.proto_errors;
          close_conn conn;
          off
        end
        else if conn.rlen - off >= 4 + len then begin
          dispatch state conn (Bytes.sub_string conn.rbuf (off + 4) len);
          go (off + 4 + len)
        end
        else off
      end
    in
    let consumed = go 0 in
    if consumed > 0 && (not conn.closed) && not conn.detached then begin
      Bytes.blit conn.rbuf consumed conn.rbuf 0 (conn.rlen - consumed);
      conn.rlen <- conn.rlen - consumed
    end
  in
  let chunk = Bytes.create 65536 in
  let service_read conn =
    match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> close_conn conn
    | 0 -> close_conn conn
    | n ->
      conn.last_active <- Unix.gettimeofday ();
      let need = conn.rlen + n in
      if Bytes.length conn.rbuf < need then begin
        let bigger = Bytes.create (max need (2 * Bytes.length conn.rbuf)) in
        Bytes.blit conn.rbuf 0 bigger 0 conn.rlen;
        conn.rbuf <- bigger
      end;
      Bytes.blit chunk 0 conn.rbuf conn.rlen n;
      conn.rlen <- need;
      process_frames conn;
      (* A subscribe detached this connection: the hub's sender owns
         the fd now; forget it without closing. *)
      if conn.detached then Hashtbl.remove conns conn.fd
  in
  let sweep_idle () =
    if cfg.idle_timeout_s > 0.0 then begin
      let now = Unix.gettimeofday () in
      let stale =
        Hashtbl.fold
          (fun _ c acc -> if now -. c.last_active > cfg.idle_timeout_s then c :: acc else acc)
          conns []
      in
      List.iter close_conn stale
    end
  in
  let accepting = ref true in
  let rec loop () =
    if Atomic.get state.stop then begin
      if !accepting then begin
        accepting := false;
        (try Unix.close listen_fd with Unix.Unix_error _ -> ());
        (* Stop the tailer before draining so no new replication
           events land in the write queue mid-shutdown. *)
        Option.iter Replication.stop_replica state.replica
      end;
      (* Drain: everything already admitted gets its answer. *)
      if
        not
          (Bqueue.is_empty state.readq && Bqueue.is_empty state.writeq
          && Atomic.get state.in_flight = 0)
      then begin
        Unix.sleepf 0.005;
        loop ()
      end
    end
    else begin
      let fds =
        (if !accepting then [ listen_fd ] else [])
        @ Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []
      in
      (match Unix.select fds [] [] 0.5 with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | ready, _, _ ->
        List.iter
          (fun fd ->
            if fd = listen_fd && !accepting then accept_new ()
            else
              match Hashtbl.find_opt conns fd with
              | Some conn -> service_read conn
              | None -> ())
          ready;
        sweep_idle ());
      loop ()
    end
  in
  loop ();
  Bqueue.close state.readq;
  Bqueue.close state.writeq;
  Array.iter Domain.join workers;
  Domain.join mutator;
  Option.iter Replication.stop_hub (Atomic.get state.hub);
  (* Sockets go first: a failing final snapshot (disk full, say) must
     not leave descriptors open or the drain half-finished — it turns
     into an [Error _] the caller can exit nonzero on. *)
  Hashtbl.iter
    (fun _ c ->
      Mutex.lock c.wmu;
      c.closed <- true;
      Mutex.unlock c.wmu;
      try Unix.close c.fd with Unix.Unix_error _ -> ())
    conns;
  let final_durability =
    match state.durability with
    | None -> Ok ()
    | Some d -> Checkpoint.close d state.index
  in
  let final_snapshot =
    match cfg.snapshot_path with
    | None -> Ok ()
    | Some path -> (
      try
        Index_serial.save path state.index;
        Ok ()
      with e -> Error (Printf.sprintf "final snapshot %s: %s" path (Printexc.to_string e)))
  in
  match (final_durability, final_snapshot) with
  | Ok (), Ok () -> Ok ()
  | Error a, Error b -> Error (a ^ "; " ^ b)
  | Error e, _ | _, Error e -> Error e
