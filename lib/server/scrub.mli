(** Background verification of at-rest server state.

    A scrub pass walks a data directory — checkpoint generations (with
    their CRC sidecars), WAL segments, and any containers — reads every
    file back at a bounded I/O rate, and re-checks the integrity
    machinery that normally only runs at recovery time: sidecar CRCs,
    snapshot parses, WAL record CRCs, container section CRCs.  Silent
    corruption is found while the good copies still exist, not at the
    next crash.

    Scrubbing never deletes: corrupt files are {!quarantine}d — moved
    into a [quarantine/] subdirectory with directory fsyncs on both
    sides, so the evidence survives for forensics and a crash cannot
    resurrect the file into the recovery chain.  The caller (the
    server's integrity domain) re-checkpoints from the live index
    before quarantining anything the recovery chain still needs.

    WAL classification is deliberately tolerant of crash artifacts: a
    trailing {e incomplete} record (fewer bytes than its own header
    claims) is exactly what a torn append looks like and is not
    corruption; only a {e complete} record that fails its CRC or
    decode is flagged.  The live WAL can therefore be scanned while
    the mutator appends to it. *)

type corrupt = {
  file : string;  (** basename within the scanned directory *)
  what : [ `Checkpoint of int | `Wal of int | `Container ];
  reason : string;
}

type report = {
  files_scanned : int;
  bytes_read : int;
  corrupt : corrupt list;  (** in directory-listing order *)
}

val scan : ?max_bytes_per_s:int -> dir:string -> unit -> report
(** One pass over [dir].  [max_bytes_per_s] (default unlimited)
    bounds the read rate — the scrubber shares a disk with the WAL.
    Files in [quarantine/], [.tmp] leftovers, and unrecognized names
    are skipped.  Never raises on file content; I/O errors on a file
    count it as corrupt with the error as reason. *)

val quarantine_dir : string -> string
(** The quarantine subdirectory of a data directory. *)

val quarantine : dir:string -> string list -> string list
(** Move the named files (basenames) into [quarantine_dir dir],
    creating it if needed, fsyncing both directories so neither the
    disappearance nor the evidence can be lost to a crash.  Returns
    the basenames actually moved (already-missing files are
    skipped). *)
