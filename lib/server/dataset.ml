open Dkindex_graph
open Dkindex_core

type t = {
  graph : Data_graph.t;
  index : Index_graph.t;
  queries : string list list;
  update_edges : (int * int) list;
}

(* Pinned requirements, identical to bench/trajectory.ml so serving
   benchmarks and the perf trajectory exercise the same index shape. *)
let reqs =
  [
    ("personref", 4);
    ("bidder", 3);
    ("interest", 4);
    ("author", 4);
    ("watch", 2);
    ("itemref", 2);
    ("increase", 2);
    ("city", 3);
  ]

(* Random ID/IDREF edge additions (Section 6.2).  nodes_with_label
   returns increasing ids, so the drawn edges depend only on the graph
   content and the seed. *)
let update_edges g ~count ~seed =
  let rng = Dkindex_datagen.Prng.create ~seed in
  let pool = Data_graph.pool g in
  let groups =
    List.filter_map
      (fun (src, dst) ->
        match (Label.Pool.find_opt pool src, Label.Pool.find_opt pool dst) with
        | Some ls, Some ld -> (
          match (Data_graph.nodes_with_label g ls, Data_graph.nodes_with_label g ld) with
          | [], _ | _, [] -> None
          | srcs, dsts -> Some (Array.of_list srcs, Array.of_list dsts))
        | _, _ -> None)
      Dkindex_datagen.Xmark.ref_pairs
  in
  let groups = Array.of_list groups in
  List.init count (fun _ ->
      let srcs, dsts = Dkindex_datagen.Prng.choose rng groups in
      (Dkindex_datagen.Prng.choose rng srcs, Dkindex_datagen.Prng.choose rng dsts))

let make ?(seed = 1) ?(n_queries = 100) ?(n_updates = 200) ~scale () =
  let graph = Dkindex_datagen.Xmark.graph ~seed ~scale () in
  let index = Dk_index.build graph ~reqs in
  let queries =
    Dkindex_workload.Query_gen.to_strings graph
      (Dkindex_workload.Query_gen.generate ~seed ~count:n_queries graph)
  in
  let update_edges = update_edges graph ~count:n_updates ~seed:(seed + 2) in
  { graph; index; queries; update_edges }
