external dk_poll : int array -> int array -> int array -> int -> int -> int = "dk_poll"
external dk_epoll_create : unit -> int = "dk_epoll_create"
external dk_epoll_ctl : int -> int -> int -> int -> int = "dk_epoll_ctl"
external dk_epoll_wait : int -> int array -> int array -> int -> int = "dk_epoll_wait"

external dk_writev : Unix.file_descr -> Bytes.t -> int -> int -> string -> int -> int -> int
  = "dk_writev_bytecode" "dk_writev"

(* On Unix a file_descr is the raw int. *)
external fd_int : Unix.file_descr -> int = "%identity"
external int_fd : int -> Unix.file_descr = "%identity"

let rd = 1
let wr = 2
let err = 4

type backend = Epoll of int | Poll

type t = {
  backend : backend;
  interest : (int, int) Hashtbl.t;  (* fd -> interest mask *)
  (* poll scratch, rebuilt from [interest] when dirty *)
  mutable dirty : bool;
  mutable pfds : int array;
  mutable pevents : int array;
  mutable prevents : int array;
  mutable pn : int;
  (* epoll result scratch *)
  out_fds : int array;
  out_events : int array;
}

let max_batch = 512

let create ?(backend = `Auto) () =
  let mk b =
    {
      backend = b;
      interest = Hashtbl.create 64;
      dirty = true;
      pfds = [||];
      pevents = [||];
      prevents = [||];
      pn = 0;
      out_fds = Array.make max_batch 0;
      out_events = Array.make max_batch 0;
    }
  in
  match backend with
  | `Poll -> Ok (mk Poll)
  | `Epoll | `Auto -> (
    match dk_epoll_create () with
    | ep when ep >= 0 -> Ok (mk (Epoll ep))
    | _ -> if backend = `Auto then Ok (mk Poll) else Error "epoll unavailable on this system")

let backend_name t = match t.backend with Epoll _ -> "epoll" | Poll -> "poll"

let add t fd interest =
  let fd = fd_int fd in
  let known = Hashtbl.mem t.interest fd in
  Hashtbl.replace t.interest fd interest;
  t.dirty <- true;
  match t.backend with
  | Poll -> ()
  | Epoll ep ->
    let op = if known then 1 else 0 in
    if dk_epoll_ctl ep op fd interest <> 0 then
      (* ADD on a re-registered fd (or MOD on a forgotten one) — retry
         with the other op before giving up. *)
      ignore (dk_epoll_ctl ep (1 - op) fd interest)

let remove t fd =
  let fd = fd_int fd in
  if Hashtbl.mem t.interest fd then begin
    Hashtbl.remove t.interest fd;
    t.dirty <- true;
    match t.backend with
    | Poll -> ()
    | Epoll ep -> ignore (dk_epoll_ctl ep 2 fd 0)
  end

let rebuild t =
  let n = Hashtbl.length t.interest in
  if Array.length t.pfds < n then begin
    let cap = max 16 (2 * n) in
    t.pfds <- Array.make cap 0;
    t.pevents <- Array.make cap 0;
    t.prevents <- Array.make cap 0
  end;
  let i = ref 0 in
  Hashtbl.iter
    (fun fd interest ->
      t.pfds.(!i) <- fd;
      t.pevents.(!i) <- interest;
      incr i)
    t.interest;
  t.pn <- n;
  t.dirty <- false

let wait t ~timeout_ms f =
  match t.backend with
  | Epoll ep ->
    let rc = dk_epoll_wait ep t.out_fds t.out_events timeout_ms in
    if rc <= 0 then 0
    else begin
      for i = 0 to rc - 1 do
        f (int_fd t.out_fds.(i)) t.out_events.(i)
      done;
      rc
    end
  | Poll ->
    if t.dirty then rebuild t;
    let rc = dk_poll t.pfds t.pevents t.prevents t.pn timeout_ms in
    if rc <= 0 then 0
    else begin
      for i = 0 to t.pn - 1 do
        let r = t.prevents.(i) in
        if r <> 0 then f (int_fd t.pfds.(i)) r
      done;
      rc
    end

let writev fd head hoff hlen tail toff tlen =
  match dk_writev fd head hoff hlen tail toff tlen with
  | -1 -> raise (Unix.Unix_error (Unix.EAGAIN, "writev", ""))
  | -2 -> raise (Unix.Unix_error (Unix.EINTR, "writev", ""))
  | -3 -> raise (Unix.Unix_error (Unix.EPIPE, "writev", ""))
  | n -> n
