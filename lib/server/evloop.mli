(** Readiness event loop for dkserve.

    A thin level-triggered abstraction over [poll(2)], upgraded to
    [epoll(7)] on Linux (chosen at {!create} time, with a clean
    fallback where epoll is unavailable).  Replaces the fixed-tick
    [Unix.select] loop: {!wait} parks in the kernel until a registered
    descriptor is ready or the caller's timeout expires, so an idle
    server costs nothing and a busy one wakes exactly when bytes
    arrive.

    Not thread-safe: one loop belongs to one domain.  Other domains
    wake it by writing to a registered self-pipe. *)

type t

val rd : int
(** Interest/readiness bit: readable (POLLIN; HUP also surfaces here
    so a closing peer wakes the reader, which then sees EOF). *)

val wr : int
(** Interest/readiness bit: writable. *)

val err : int
(** Readiness bit only: error/invalid descriptor. *)

val create : ?backend:[ `Auto | `Poll | `Epoll ] -> unit -> (t, string) result
(** [`Auto] (default) picks epoll when the OS offers it, else poll.
    [`Epoll] errors where unsupported (tests use it to pin a
    backend). *)

val backend_name : t -> string
(** ["epoll"] or ["poll"]. *)

val add : t -> Unix.file_descr -> int -> unit
(** [add t fd interest] registers [fd] with an {!rd}/{!wr} mask.
    Adding an already-registered fd updates its interest. *)

val remove : t -> Unix.file_descr -> unit
(** Deregister; must happen before the fd is closed.  Unknown fds are
    ignored. *)

val wait : t -> timeout_ms:int -> (Unix.file_descr -> int -> unit) -> int
(** Block until readiness or timeout ([-1] = forever, [0] = poll);
    invoke the callback per ready descriptor with its readiness mask
    and return the ready count (0 on timeout or EINTR).  The callback
    may add/remove descriptors, including the one it was called
    for. *)

val writev :
  Unix.file_descr -> Bytes.t -> int -> int -> string -> int -> int -> int
(** [writev fd head hoff hlen tail toff tlen]: gathered write of a
    bytes slice followed by a string slice, for frame-header + large
    payload sends without concatenation.  Returns bytes written
    (possibly short).
    @raise Unix.Unix_error [EAGAIN]/[EINTR] as [Unix.write] would;
    any other failure surfaces as [EPIPE] (the connection is dead). *)
