open Dkindex_graph
open Dkindex_core

type config = {
  dir : string;
  sync : Wal.sync_policy;
  checkpoint_records : int;
  checkpoint_bytes : int;
  checkpoint_interval_s : float;
}

let default_config ~dir =
  {
    dir;
    sync = Wal.Interval 64;
    checkpoint_records = 4096;
    checkpoint_bytes = 8 * 1024 * 1024;
    checkpoint_interval_s = 60.0;
  }

(* ------------------------------------------------------------------ *)
(* File naming *)

let cp_name seq = Printf.sprintf "checkpoint-%09d.index" seq
let crc_name seq = Printf.sprintf "checkpoint-%09d.crc" seq
let wal_name seq = Printf.sprintf "wal-%09d.log" seq

let seq_of name ~prefix ~suffix =
  let pl = String.length prefix and sl = String.length suffix in
  let n = String.length name in
  if n > pl + sl && String.starts_with ~prefix name && String.ends_with ~suffix name then
    int_of_string_opt (String.sub name pl (n - pl - sl))
  else None

let list_seqs dir ~prefix ~suffix =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter_map (fun n -> seq_of n ~prefix ~suffix)
    |> List.sort_uniq compare

let checkpoint_seqs dir = list_seqs dir ~prefix:"checkpoint-" ~suffix:".index"
let wal_seqs dir = list_seqs dir ~prefix:"wal-" ~suffix:".log"
let checkpoint_file ~dir ~seq = Filename.concat dir (cp_name seq)
let crc_file ~dir ~seq = Filename.concat dir (crc_name seq)

(* Checkpoint CRC sidecar: "crc32 length\n" of the snapshot bytes.
   The text snapshot format has per-line structure but no whole-file
   check of its own, so a flipped digit can still parse; the sidecar
   closes that hole for both recovery and the scrubber.  A checkpoint
   without a sidecar (crash between the two writes, or a pre-sidecar
   generation) is accepted as-is. *)
let sidecar_of s = Printf.sprintf "%d %d\n" (Wal.crc32 s 0 (String.length s)) (String.length s)

(* [Ok true] = sidecar present and matching, [Ok false] = no sidecar,
   [Error reason] = sidecar present and contradicting the payload. *)
let check_sidecar ~dir ~seq s =
  match In_channel.with_open_bin (crc_file ~dir ~seq) In_channel.input_all with
  | exception Sys_error _ -> Ok false
  | raw -> (
    match String.split_on_char ' ' (String.trim raw) with
    | [ crc; len ] -> (
      match (int_of_string_opt crc, int_of_string_opt len) with
      | Some crc, Some len ->
        if len <> String.length s then
          Error (Printf.sprintf "length %d, sidecar says %d" (String.length s) len)
        else if crc <> Wal.crc32 s 0 len then Error "crc mismatch"
        else Ok true
      | _ -> Error "unparsable sidecar")
    | _ -> Error "unparsable sidecar")

(* ------------------------------------------------------------------ *)
(* Atomic snapshot write: tmp in the same directory, fsync, rename,
   fsync the directory so the rename itself is durable. *)

let fsync_dir dir =
  match Unix.openfile dir [ O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let write_atomic ?faults dir name s =
  let tmp = Filename.concat dir (name ^ ".tmp") in
  let final = Filename.concat dir name in
  let fd = Unix.openfile tmp [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  (try
     let b = Bytes.unsafe_of_string s in
     let off = ref 0 and len = ref (Bytes.length b) in
     while !len > 0 do
       match Faults.write faults fd b !off !len with
       | n ->
         off := !off + n;
         len := !len - n
       | exception Unix.Unix_error (EINTR, _, _) -> ()
     done;
     Faults.fsync faults fd;
     Unix.close fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Unix.rename tmp final;
  fsync_dir dir

(* Keep the two newest checkpoint generations and every WAL from the
   older kept generation on; delete the rest (and stray .tmp files).
   Pruning runs only after a newer snapshot is durably in place, so a
   reader can always fall back one generation with a complete WAL
   chain. *)
let prune dir =
  let removed = ref false in
  let rm name =
    try
      Sys.remove (Filename.concat dir name);
      removed := true
    with Sys_error _ -> ()
  in
  (match List.rev (checkpoint_seqs dir) with
  | _newest :: prev :: rest ->
    List.iter
      (fun s ->
        rm (cp_name s);
        rm (crc_name s))
      rest;
    List.iter (fun s -> if s < prev then rm (wal_name s)) (wal_seqs dir)
  | _ -> ());
  (match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names -> Array.iter (fun n -> if Filename.check_suffix n ".tmp" then rm n) names);
  (* Make the unlinks themselves durable: without this a crash here
     can resurrect a pruned generation, and recovery could then load a
     checkpoint whose WAL chain was already (durably) deleted. *)
  if !removed then fsync_dir dir

(* ------------------------------------------------------------------ *)
(* Replay *)

let apply_mutation idx (m : Wal.mutation) =
  let g = Index_graph.data idx in
  let check_node id what =
    if id < 0 || id >= Data_graph.n_nodes g then
      failwith (Printf.sprintf "%s node %d out of range" what id)
  in
  match m with
  | Wal.Add_edge { u; v } ->
    check_node u "source";
    check_node v "target";
    Dk_update.add_edge idx u v;
    idx
  | Wal.Remove_edge { u; v } ->
    check_node u "source";
    check_node v "target";
    Dk_update.remove_edge idx u v;
    idx
  | Wal.Add_subgraph { graph; reqs } ->
    let h = Serial.of_string graph in
    let _g', idx' = Dk_update.add_subgraph idx h ~reqs in
    idx'
  | Wal.Promote [] ->
    Dk_tune.promote_to_requirements idx;
    idx
  | Wal.Promote pairs ->
    Dk_tune.promote_labels idx pairs;
    idx
  | Wal.Demote reqs -> Dk_tune.demote idx ~reqs

type recovery = {
  index : Index_graph.t option;
  checkpoint_seq : int;
  replayed_records : int;
  torn_bytes : int;
  fallback_checkpoints : int;
  replay_errors : int;
}

let empty_recovery =
  {
    index = None;
    checkpoint_seq = -1;
    replayed_records = 0;
    torn_bytes = 0;
    fallback_checkpoints = 0;
    replay_errors = 0;
  }

let recover ?read_faults ~dir () =
  let cps = List.rev (checkpoint_seqs dir) (* newest first *) in
  let rec load cps skipped =
    match cps with
    | [] -> if skipped > 0 then Some (None, -1, skipped) else None
    | seq :: older -> (
      match
        let s = Faults.read_all read_faults (Filename.concat dir (cp_name seq)) in
        match check_sidecar ~dir ~seq s with
        | Ok _ -> Index_serial.of_string s
        | Error reason -> failwith ("checkpoint sidecar: " ^ reason)
      with
      | idx -> Some (Some idx, seq, skipped)
      | exception _ -> load older (skipped + 1))
  in
  match load cps 0 with
  | None -> empty_recovery
  | Some (base, seq, fallback_checkpoints) ->
    let replayed = ref 0 and torn = ref 0 and errors = ref 0 in
    let idx = ref base in
    (match base with
    | None -> ()
    | Some _ ->
      (* Replay the contiguous WAL chain from the loaded generation
         on.  Each file's torn tail is a truncation point; a record
         that fails to re-apply stops replay (it cannot be skipped —
         later records assume its effect). *)
      let wals = List.filter (fun s -> s >= seq) (wal_seqs dir) in
      let rec chain expected = function
        | s :: rest when s = expected ->
          let r = Wal.replay ?faults:read_faults (Filename.concat dir (wal_name s)) in
          torn := !torn + r.Wal.torn_bytes;
          let ok =
            List.for_all
              (fun m ->
                match !idx with
                | None -> false
                | Some i -> (
                  match apply_mutation i m with
                  | i' ->
                    idx := Some i';
                    incr replayed;
                    true
                  | exception _ ->
                    incr errors;
                    false))
              r.Wal.mutations
          in
          if ok then chain (expected + 1) rest
        | _ -> ()
      in
      chain seq wals);
    {
      index = !idx;
      checkpoint_seq = seq;
      replayed_records = !replayed;
      torn_bytes = !torn;
      fallback_checkpoints;
      replay_errors = !errors;
    }

(* ------------------------------------------------------------------ *)
(* Live manager *)

type job = Write of int * string | Stop

type t = {
  cfg : config;
  wal_faults : Faults.t option;
  cp_faults : Faults.t option;
  recovery : recovery;
  mutable wal : Wal.t;
  mutable seq : int;
  (* Mirror of [seq] readable from other domains (the replication hub
     tails the WAL files from its own senders).  Updated last on
     rotation, so (read seq_a, then wal_bytes_a) never claims bytes
     beyond the complete records of the generation it names. *)
  seq_a : int Atomic.t;
  mutable last_rotate : float;
  (* background writer *)
  jobs : job Queue.t;
  mu : Mutex.t;
  nonempty : Condition.t;
  writer : unit Domain.t option ref;
  (* counters, read by stats from any domain *)
  read_only_flag : bool Atomic.t;
  wal_error : string ref;
  err_mu : Mutex.t;
  wal_records_a : int Atomic.t;
  wal_bytes_a : int Atomic.t;
  checkpoints_written : int Atomic.t;
  checkpoint_failures : int Atomic.t;
  checkpoint_last_bytes : int Atomic.t;
}

let push_job t j =
  Mutex.lock t.mu;
  Queue.push j t.jobs;
  Condition.signal t.nonempty;
  Mutex.unlock t.mu

let pop_job t =
  Mutex.lock t.mu;
  while Queue.is_empty t.jobs do
    Condition.wait t.nonempty t.mu
  done;
  let j = Queue.pop t.jobs in
  Mutex.unlock t.mu;
  j

let read_only t = Atomic.get t.read_only_flag

let note_wal_failure t msg =
  Mutex.lock t.err_mu;
  t.wal_error := msg;
  Mutex.unlock t.err_mu;
  Atomic.set t.read_only_flag true

let write_checkpoint t seq s =
  write_atomic ?faults:t.cp_faults t.cfg.dir (cp_name seq) s;
  write_atomic ?faults:t.cp_faults t.cfg.dir (crc_name seq) (sidecar_of s);
  Atomic.incr t.checkpoints_written;
  Atomic.set t.checkpoint_last_bytes (String.length s);
  prune t.cfg.dir

let writer_loop t () =
  let rec go () =
    match pop_job t with
    | Stop -> ()
    | Write (seq, s) ->
      (try write_checkpoint t seq s
       with _ -> Atomic.incr t.checkpoint_failures);
      go ()
  in
  go ()

let start ?wal_faults ?checkpoint_faults ?recovery cfg index =
  (try Unix.mkdir cfg.dir 0o755 with Unix.Unix_error ((EEXIST | EISDIR), _, _) -> ());
  let existing =
    match (checkpoint_seqs cfg.dir, wal_seqs cfg.dir) with
    | [], [] -> -1
    | cs, ws -> List.fold_left max (-1) (cs @ ws)
  in
  let seq = existing + 1 in
  let t =
    {
      cfg;
      wal_faults;
      cp_faults = checkpoint_faults;
      recovery = (match recovery with Some r -> r | None -> empty_recovery);
      wal = Wal.create ?faults:wal_faults ~sync:cfg.sync (Filename.concat cfg.dir (wal_name seq));
      seq;
      seq_a = Atomic.make seq;
      last_rotate = Unix.gettimeofday ();
      jobs = Queue.create ();
      mu = Mutex.create ();
      nonempty = Condition.create ();
      writer = ref None;
      read_only_flag = Atomic.make false;
      wal_error = ref "";
      err_mu = Mutex.create ();
      wal_records_a = Atomic.make 0;
      wal_bytes_a = Atomic.make 0;
      checkpoints_written = Atomic.make 0;
      checkpoint_failures = Atomic.make 0;
      checkpoint_last_bytes = Atomic.make 0;
    }
  in
  (* The recovered (or initial) state becomes durable before the
     server accepts traffic; this is also what licenses pruning the
     generation we just recovered from. *)
  write_checkpoint t seq (Index_serial.to_string index);
  t.writer := Some (Domain.spawn (writer_loop t));
  t

let log_mutation t m =
  Wal.append t.wal m;
  Atomic.set t.wal_records_a (Wal.records t.wal);
  Atomic.set t.wal_bytes_a (Wal.bytes t.wal)

(* Rotate to the next generation: open the new WAL first (if that
   fails we still have the old one and degrade to read-only), then
   retire the old log.  Returns the snapshot to write at the new
   generation, or None if rotation failed. *)
let rotate t index =
  let s = Index_serial.to_string index in
  let seq' = t.seq + 1 in
  match Wal.create ?faults:t.wal_faults ~sync:t.cfg.sync (Filename.concat t.cfg.dir (wal_name seq')) with
  | exception e ->
    note_wal_failure t ("wal rotation: " ^ Printexc.to_string e);
    None
  | wal' ->
    Wal.close t.wal;
    t.wal <- wal';
    t.seq <- seq';
    t.last_rotate <- Unix.gettimeofday ();
    Atomic.set t.wal_records_a 0;
    Atomic.set t.wal_bytes_a 0;
    Atomic.set t.seq_a seq';
    Some (seq', s)

let triggered t =
  let records = Wal.records t.wal and bytes = Wal.bytes t.wal in
  records > 0
  && ((t.cfg.checkpoint_records > 0 && records >= t.cfg.checkpoint_records)
     || (t.cfg.checkpoint_bytes > 0 && bytes >= t.cfg.checkpoint_bytes)
     || (t.cfg.checkpoint_interval_s > 0.0
        && Unix.gettimeofday () -. t.last_rotate >= t.cfg.checkpoint_interval_s))

let maybe_checkpoint t index =
  if (not (read_only t)) && triggered t then
    match rotate t index with
    | Some (seq, s) -> push_job t (Write (seq, s))
    | None -> ()

let checkpoint_now t index =
  if read_only t then Error "read-only: wal unwritable"
  else
    match rotate t index with
    | None -> Error "wal rotation failed"
    | Some (seq, s) -> (
      match write_checkpoint t seq s with
      | () -> Ok ()
      | exception e ->
        Atomic.incr t.checkpoint_failures;
        Error (Printexc.to_string e))

let dir t = t.cfg.dir
let wal_file ~dir ~seq = Filename.concat dir (wal_name seq)

(* Domain-safe current WAL position.  Only complete records are ever
   claimed: wal_bytes_a is bumped after the append returns, and seq_a
   flips to a new generation only after its byte counter was reset. *)
let wal_position t =
  let seq = Atomic.get t.seq_a in
  let bytes = Atomic.get t.wal_bytes_a in
  (seq, bytes)

let read_file ?faults path = Faults.read_all faults path

(* Newest checkpoint that actually parses, as raw snapshot bytes (for
   replica bootstrap).  Racing the pruner just skips to an older one. *)
let newest_checkpoint ~dir =
  let rec go = function
    | [] -> None
    | seq :: older -> (
      match
        let s = read_file (Filename.concat dir (cp_name seq)) in
        (match check_sidecar ~dir ~seq s with
        | Ok _ -> ()
        | Error reason -> failwith reason);
        ignore (Index_serial.of_string s);
        s
      with
      | s -> Some (seq, s)
      | exception _ -> go older)
  in
  go (List.rev (checkpoint_seqs dir))

let stats t =
  let b v = if v then "true" else "false" in
  let err =
    Mutex.lock t.err_mu;
    let e = !(t.wal_error) in
    Mutex.unlock t.err_mu;
    e
  in
  [
    ("wal_seq", string_of_int t.seq);
    ("wal_records", string_of_int (Atomic.get t.wal_records_a));
    ("wal_bytes", string_of_int (Atomic.get t.wal_bytes_a));
    ("wal_sync", Wal.sync_policy_to_string t.cfg.sync);
    ("read_only", b (read_only t));
    ("wal_error", err);
    ("checkpoints_written", string_of_int (Atomic.get t.checkpoints_written));
    ("checkpoint_failures", string_of_int (Atomic.get t.checkpoint_failures));
    ("checkpoint_last_bytes", string_of_int (Atomic.get t.checkpoint_last_bytes));
    ("recovery_checkpoint_seq", string_of_int t.recovery.checkpoint_seq);
    ("recovery_replayed_records", string_of_int t.recovery.replayed_records);
    ("recovery_torn_bytes", string_of_int t.recovery.torn_bytes);
    ("recovery_fallback_checkpoints", string_of_int t.recovery.fallback_checkpoints);
    ("recovery_replay_errors", string_of_int t.recovery.replay_errors);
  ]

let close t index =
  let final =
    if Wal.records t.wal = 0 then Ok ()
    else if read_only t then
      (* The WAL is dead but its synced prefix is on disk; recovery
         will replay it.  Nothing more we can safely persist. *)
      Ok ()
    else checkpoint_now t index
  in
  push_job t Stop;
  (match !(t.writer) with
  | Some d ->
    Domain.join d;
    t.writer := None
  | None -> ());
  Wal.close t.wal;
  final
