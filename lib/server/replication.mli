(** Primary/replica replication for dkserve: asynchronous WAL
    shipping, snapshot catch-up, heartbeats, and failover.

    {b Model.}  The primary acknowledges a write after applying it in
    memory and appending it to its local WAL (exactly as in single-node
    operation); replication is asynchronous — shipping happens after
    the ack, so a primary lost between ack and ship can lose the tail
    of acknowledged writes unless the operator waits for replicas to
    catch up (see [dkindex-loadgen --wait-replication]).  Each primary
    incarnation is identified by an {e epoch}; promotion bumps the
    epoch and persists it, and every client/replica carries the
    highest epoch it has observed in its {!Wire.Hello}, which is how a
    deposed primary learns of its demotion and fences itself.

    WAL positions are [(generation, byte offset)] pairs in the
    {e primary's} data directory and are only meaningful within one
    primary lineage (tracked as the [synced_epoch]); a replica whose
    position belongs to another lineage — or that asks for a
    generation the primary has pruned — is bootstrapped with a full
    {!Index_serial} snapshot. *)

(** {1 Epoch persistence} *)

val load_epoch : dir:string -> int
(** Epoch stored in [dir]'s [epoch] file; 0 when absent/unreadable. *)

val store_epoch : dir:string -> int -> unit
(** Atomic (tmp + fsync + rename) write of the epoch file. *)

(** {1 Hub: the primary side} *)

type hub

val create_hub :
  ?faults_for:(int -> Faults.t option) ->
  ?heartbeat_s:float ->
  epoch:int Atomic.t ->
  Checkpoint.t ->
  hub
(** [epoch] is shared with the server (heartbeats and chunks carry the
    value current at send time).  [faults_for replica_id] lets tests
    inject partitions / torn streams / slow links per subscriber.
    Creating a hub spawns nothing; each {!attach} spawns one sender
    domain. *)

val attach : hub -> fd:Unix.file_descr -> replica_id:int -> seq:int -> offset:int -> unit
(** Take ownership of [fd] (a connection the server has detached after
    a [Rep_subscribe]) and stream the WAL to it from [(seq, offset)],
    bootstrapping with a snapshot when the position is unknown
    ([seq = -1]), implausible, or pruned.  The sender dies silently
    when the socket does; a reconnecting replica re-subscribes. *)

val hub_stats : hub -> (string * string) list
(** [replicas_connected] plus, per live replica,
    [replica.<id>.{epoch,wal_seq,wal_offset,bytes_behind,bootstraps}]. *)

val hub_lag_bytes : hub -> int
(** Max [bytes_behind] across live subscribers (0 when none). *)

val stop_hub : hub -> unit
(** Shut every subscriber socket and join the sender domains. *)

(** {1 Replica: the tailer side} *)

type rconfig = {
  primary_host : string;
  primary_port : int;
  replica_id : int;
  auto_promote : bool;
      (** push {!Ev_promote} when the failover timeout expires (only
          after at least one successful contact — a replica that never
          reached its primary refuses to promote an empty index) *)
  failover_timeout_s : float;  (** no contact for this long = primary presumed dead; <= 0 disables *)
  staleness_bound_s : float;
      (** reads are refused ([`Stale]) once the primary has been
          silent this long; <= 0 disables *)
}

val default_rconfig : host:string -> port:int -> replica_id:int -> rconfig
(** auto_promote false, failover 3 s, staleness bound 10 s. *)

(** Events handed to the server's mutator domain, in stream order. *)
type event =
  | Ev_snapshot of { index : string; epoch : int; seq : int }
      (** install this {!Index_serial} document; the stream continues
          from [(seq, 0)] *)
  | Ev_mutations of { muts : Wal.mutation list; epoch : int; seq : int; base : int; offset : int }
      (** complete WAL records decoded from bytes [[base, offset)] of
          generation [seq]; after a reconnect the same bytes can be
          delivered twice — the applier skips records at or below its
          applied position (the WAL encoding is canonical, so record
          boundaries re-derive exactly) *)
  | Ev_promote  (** the failover watchdog fired (auto-promotion) *)

type replica

val create_replica : rconfig -> epoch:int Atomic.t -> max_seen:int Atomic.t -> replica
(** [epoch]/[max_seen] are shared with the server. *)

val start_replica : replica -> push:(event -> unit) -> unit
(** Spawn the tailer domain.  [push] must block, never shed (it feeds
    the mutator queue). *)

val stop_replica : replica -> unit

val force_resync : replica -> unit
(** Drop the current stream (if any) and re-subscribe with [seq = -1],
    forcing a full snapshot bootstrap on the next session.  The
    anti-entropy fallback when range repair cannot reconcile (the
    index layer itself has drifted). *)

val mark_promoted : replica -> unit
(** Called by the mutator once promotion completes; the tailer domain
    exits and reads stop being staleness-checked. *)

val is_promoted : replica -> bool

val note_applied : replica -> seq:int -> offset:int -> n:int -> unit
(** Mutator bookkeeping: [n] records applied up to [(seq, offset)]. *)

val applied_position : replica -> int * int
(** Last applied [(generation, offset)]; [(-1, 0)] before any sync. *)

val note_installed : replica -> epoch:int -> seq:int -> unit
(** Mutator bookkeeping: a snapshot of lineage [epoch] installed; the
    applied position resets to [(seq, 0)]. *)

val stale : replica -> bool
(** True when reads must be refused ([`Stale]): never synced, or the
    primary has been silent past the staleness bound.  Always false
    once promoted. *)

val contact_age_s : replica -> float option
(** Seconds since the primary was last heard from — the quantity
    {!stale} compares against the staleness bound, exported so reads
    can be stamped with the age of the data they were answered from.
    [None] before the first contact; [Some 0.] once promoted. *)

val rconfig_of : replica -> rconfig
val replica_stats : replica -> (string * string) list
(** [replication_*] keys: connection, positions, bytes behind, records
    applied, snapshots installed, reconnects, contact age, staleness. *)
