open Dkindex_graph
open Dkindex_core

let range_shift = 12
let range_size = 1 lsl range_shift
let n_ranges n = max 1 ((n + range_size - 1) lsr range_shift)
let mask48 = (1 lsl 48) - 1

(* FNV-1a folded over machine words, sign cleared so digests stay
   non-negative under wrapping multiplication.  Not cryptographic —
   the adversary is bit rot, not an attacker. *)
let fnv_prime = 0x100000001B3
let seed = 0x27D4EB2F165667C5 land max_int
let mix h x = ((h lxor x) * fnv_prime) land max_int

let hash_string s =
  let h = ref seed in
  String.iter (fun c -> h := mix !h (Char.code c)) s;
  !h

(* Per-edge hash used in the order-independent folds.  Both endpoints
   are offset by one so node 0 is not absorbed by the xor. *)
let edge_hash u v = mix (mix seed (u + 1)) (v + 1)

type digests = {
  n_nodes : int;
  data_ranges : int array;
  index_ranges : int array;
  label_edges : int;
  root : int;
}

(* ------------------------------------------------------------------ *)
(* Layer computations (pure reads of a stable snapshot)               *)

(* label-name hashes by code, so digests do not depend on pool code
   layout *)
let label_hashes pool =
  let a = Array.make (Label.Pool.count pool) 0 in
  Label.Pool.fold
    (fun code name () -> a.(Label.to_int code) <- hash_string name)
    pool ();
  a

let data_range_digest g lhash r =
  let n = Data_graph.n_nodes g in
  let lo = r lsl range_shift and hi = min n ((r + 1) lsl range_shift) in
  let h = ref seed in
  for u = lo to hi - 1 do
    let cx = ref 0 in
    Data_graph.iter_children g u (fun v -> cx := !cx lxor edge_hash u v);
    h := mix (mix (mix !h (u + 1)) lhash.(Label.to_int (Data_graph.label g u))) !cx
  done;
  !h land mask48

let index_range_digest idx r =
  let n = Data_graph.n_nodes (Index_graph.data idx) in
  let lo = r lsl range_shift and hi = min n ((r + 1) lsl range_shift) in
  let h = ref seed in
  for u = lo to hi - 1 do
    let nd = Index_graph.node idx (Index_graph.cls idx u) in
    h := mix (mix (mix !h (u + 1)) (Index_graph.extent_min nd + 1)) nd.Index_graph.k
  done;
  !h land mask48

(* Refill [buckets.(code)] for every label satisfying [want] in one
   pass over the live index: XOR of per-edge hashes over both
   endpoints' (label hash, canonical representative, k). *)
let fill_buckets idx lhash buckets ~want =
  Array.iteri (fun c _ -> if want c then buckets.(c) <- 0) buckets;
  Index_graph.iter_alive idx (fun nd ->
      let ca = Label.to_int nd.Index_graph.label in
      if want ca then begin
        let ha =
          mix (mix (mix seed lhash.(ca)) (Index_graph.extent_min nd + 1))
            nd.Index_graph.k
        in
        Index_graph.iter_children idx nd.Index_graph.id (fun b ->
            let nb = Index_graph.node idx b in
            let hb =
              mix
                (mix
                   (mix ha lhash.(Label.to_int nb.Index_graph.label))
                   (Index_graph.extent_min nb + 1))
                nb.Index_graph.k
            in
            buckets.(ca) <- buckets.(ca) lxor hb)
      end)

let fold_digests ~n ~dranges ~iranges ~buckets ~lhash =
  let le = ref 0 in
  Array.iteri
    (fun c b -> if b <> 0 then le := !le lxor (mix (mix seed lhash.(c)) b))
    buckets;
  let le = !le land mask48 in
  let h = ref (mix seed n) in
  Array.iter (fun d -> h := mix !h d) dranges;
  Array.iter (fun d -> h := mix !h d) iranges;
  h := mix !h le;
  { n_nodes = n; data_ranges = dranges; index_ranges = iranges;
    label_edges = le; root = !h land mask48 }

let compute_full idx =
  let g = Index_graph.data idx in
  let n = Data_graph.n_nodes g in
  let lhash = label_hashes (Data_graph.pool g) in
  let nr = n_ranges n in
  let dranges = Array.init nr (data_range_digest g lhash) in
  let iranges = Array.init nr (index_range_digest idx) in
  let buckets = Array.make (Array.length lhash) 0 in
  fill_buckets idx lhash buckets ~want:(fun _ -> true);
  fold_digests ~n ~dranges ~iranges ~buckets ~lhash

(* ------------------------------------------------------------------ *)
(* Incremental tracker                                                *)

type t = {
  mu : Mutex.t;
  (* committed dirty state + caches, guarded by [mu] *)
  mutable cached : bool;
  mutable all_dirty : bool;
  mutable dirty_ranges : bool array;
  mutable dirty_ids : int list;  (* traced index ids, resolved at refresh *)
  mutable n : int;
  mutable dranges : int array;
  mutable iranges : int array;
  mutable buckets : int array;
  mutable lhash : int array;
  (* pending marks: mutator domain only, unlocked *)
  mutable pend_all : bool;
  mutable pend_nodes : int list;
  mutable pend_ids : int list;
}

let create () =
  {
    mu = Mutex.create ();
    cached = false;
    all_dirty = true;
    dirty_ranges = [||];
    dirty_ids = [];
    n = 0;
    dranges = [||];
    iranges = [||];
    buckets = [||];
    lhash = [||];
    pend_all = false;
    pend_nodes = [];
    pend_ids = [];
  }

let attach t idx = Index_graph.set_tracer idx (Some (fun id -> t.pend_ids <- id :: t.pend_ids))

let note_mutation t = function
  | Wal.Add_edge { u; v } | Wal.Remove_edge { u; v } ->
    t.pend_nodes <- u :: v :: t.pend_nodes
  | Wal.Add_subgraph _ | Wal.Promote _ | Wal.Demote _ -> t.pend_all <- true

let invalidate t = t.pend_all <- true

let commit t =
  if t.pend_all || t.pend_nodes <> [] || t.pend_ids <> [] then begin
    Mutex.lock t.mu;
    if t.pend_all then t.all_dirty <- true
    else begin
      List.iter
        (fun u ->
          let r = u lsr range_shift in
          if r < Array.length t.dirty_ranges then t.dirty_ranges.(r) <- true
          else t.all_dirty <- true)
        t.pend_nodes;
      t.dirty_ids <- List.rev_append t.pend_ids t.dirty_ids
    end;
    t.pend_all <- false;
    t.pend_nodes <- [];
    t.pend_ids <- [];
    Mutex.unlock t.mu
  end

let refresh t idx =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) @@ fun () ->
  let g = Index_graph.data idx in
  let n = Data_graph.n_nodes g in
  let pool = Data_graph.pool g in
  let old_labels = Array.length t.lhash in
  if Label.Pool.count pool <> old_labels then begin
    t.lhash <- label_hashes pool;
    let buckets = Array.make (Array.length t.lhash) 0 in
    Array.blit t.buckets 0 buckets 0 (min old_labels (Array.length buckets));
    t.buckets <- buckets
  end;
  let lhash = t.lhash in
  if (not t.cached) || t.all_dirty || n <> t.n then begin
    let nr = n_ranges n in
    t.n <- n;
    t.dranges <- Array.init nr (data_range_digest g lhash);
    t.iranges <- Array.init nr (index_range_digest idx);
    fill_buckets idx lhash t.buckets ~want:(fun _ -> true);
    t.dirty_ranges <- Array.make nr false;
    t.dirty_ids <- [];
    t.all_dirty <- false;
    t.cached <- true
  end
  else begin
    (* Resolve traced index ids against this copy: their live
       descendants' extents are the data nodes whose class identity may
       have changed, and their labels (plus their parents' labels, for
       inbound edges) are the buckets that may have changed. *)
    let dirty_label = Array.make (Array.length lhash) false in
    let any_label = ref false in
    let bad = ref false in
    List.iter
      (fun id ->
        match Index_graph.resolve idx id with
        | exception Invalid_argument _ -> bad := true
        | ids ->
          List.iter
            (fun i ->
              let nd = Index_graph.node idx i in
              dirty_label.(Label.to_int nd.Index_graph.label) <- true;
              any_label := true;
              Index_graph.iter_parents idx i (fun p ->
                  let np = Index_graph.node idx p in
                  dirty_label.(Label.to_int np.Index_graph.label) <- true);
              for j = 0 to nd.Index_graph.extent_size - 1 do
                t.dirty_ranges.(nd.Index_graph.extent.(j) lsr range_shift) <- true
              done)
            ids)
      t.dirty_ids;
    t.dirty_ids <- [];
    if !bad then begin
      (* An id this copy has never seen (e.g. marks that raced a
         wholesale install): recompute everything rather than guess. *)
      let nr = n_ranges n in
      t.dranges <- Array.init nr (data_range_digest g lhash);
      t.iranges <- Array.init nr (index_range_digest idx);
      fill_buckets idx lhash t.buckets ~want:(fun _ -> true);
      t.dirty_ranges <- Array.make nr false
    end
    else begin
      Array.iteri
        (fun r dirty ->
          if dirty then begin
            t.dranges.(r) <- data_range_digest g lhash r;
            t.iranges.(r) <- index_range_digest idx r;
            t.dirty_ranges.(r) <- false
          end)
        t.dirty_ranges;
      if !any_label then fill_buckets idx lhash t.buckets ~want:(fun c -> dirty_label.(c))
    end
  end;
  fold_digests ~n ~dranges:(Array.copy t.dranges) ~iranges:(Array.copy t.iranges)
    ~buckets:t.buckets ~lhash

(* ------------------------------------------------------------------ *)
(* Anti-entropy helpers                                               *)

let diff_data_ranges a b =
  if a.n_nodes <> b.n_nodes then
    invalid_arg "Integrity.diff_data_ranges: node counts differ";
  let out = ref [] in
  for r = Array.length a.data_ranges - 1 downto 0 do
    if a.data_ranges.(r) <> b.data_ranges.(r) then out := r :: !out
  done;
  !out

let section idx r =
  let g = Index_graph.data idx in
  let n = Data_graph.n_nodes g in
  let lo = r lsl range_shift and hi = min n ((r + 1) lsl range_shift) in
  let out = ref [] and count = ref 0 in
  for u = hi - 1 downto lo do
    Data_graph.iter_children g u (fun v ->
        out := (u, v) :: !out;
        incr count)
  done;
  let arr = Array.make !count (0, 0) in
  List.iteri (fun i e -> arr.(i) <- e) !out;
  arr

let section_diff g ~range ~theirs =
  let n = Data_graph.n_nodes g in
  let lo = range lsl range_shift and hi = min n ((range + 1) lsl range_shift) in
  (* Node ids stay well under 2^31 (they index arrays), so packing an
     edge into one int cannot collide. *)
  let key u v = (u lsl 31) lor v in
  let want = Hashtbl.create (Array.length theirs * 2) in
  Array.iter (fun (u, v) -> Hashtbl.replace want (key u v) (u, v)) theirs;
  let muts = ref [] in
  for u = lo to hi - 1 do
    Data_graph.iter_children g u (fun v ->
        if Hashtbl.mem want (key u v) then Hashtbl.remove want (key u v)
        else muts := Wal.Remove_edge { u; v } :: !muts)
  done;
  Hashtbl.iter (fun _ (u, v) -> muts := Wal.Add_edge { u; v } :: !muts) want;
  !muts
