(** The deterministic serving dataset.

    dkserve's correctness story leans on the server and the load
    generator being able to reconstruct {e the same} index
    independently: the loadgen's check mode replays the server's
    workload against a local in-process index and requires bit-for-bit
    equal answers.  That only works if both sides build from one
    pinned recipe — this module is that recipe (XMark graph, fixed
    requirements, seeded query workload and ID/IDREF update edges, all
    functions of [(seed, scale)] alone). *)

open Dkindex_graph
open Dkindex_core

type t = {
  graph : Data_graph.t;
  index : Index_graph.t;
  queries : string list list;  (** label paths, each non-empty on [graph] *)
  update_edges : (int * int) list;
      (** random ID/IDREF additions (paper, Section 6.2) *)
}

val reqs : (string * int) list
(** The pinned D(k) requirements (same as the benchmark harness). *)

val make : ?seed:int -> ?n_queries:int -> ?n_updates:int -> scale:int -> unit -> t
(** Defaults: [seed = 1], [n_queries = 100], [n_updates = 200]. *)
