(** Streaming (SAX-style) XML parsing.

    {!Xml_parser} materializes the whole document tree; for bulk
    loading large files into a data graph that is wasteful, since the
    graph {!Dkindex_graph.Builder} only needs a single pass of events.
    This module delivers the same XML subset (see {!Xml_parser}) as a
    pull stream over a constant-size buffer:

    - elements open and close ({!Start_element} / {!End_element});
    - character data and CDATA arrive as {!Text} (whitespace-only text
      is dropped, contiguous text may arrive in several events);
    - comments, processing instructions and DOCTYPE are skipped.

    The pull interface drives everything else: {!fold_string},
    {!fold_channel} and {!fold_file} are conveniences over {!next}. *)

type event =
  | Start_element of { tag : string; attrs : Xml_ast.attr list }
  | End_element of string
  | Text of string

exception Parse_error of { line : int; msg : string }

type t

val of_string : string -> t
val of_channel : ?buffer_size:int -> in_channel -> t
(** [buffer_size] (default 64 KiB) bounds lexer memory; individual
    tokens (a tag with its attributes, an entity) must fit in it. *)

val next : t -> event option
(** The next event, or [None] after the root element closes.
    @raise Parse_error on malformed input (including trailing content
    and unclosed elements). *)

val fold : t -> init:'a -> f:('a -> event -> 'a) -> 'a
val fold_string : string -> init:'a -> f:('a -> event -> 'a) -> 'a
val fold_channel : in_channel -> init:'a -> f:('a -> event -> 'a) -> 'a
val fold_file : string -> init:'a -> f:('a -> event -> 'a) -> 'a

val emit_tree : Xml_ast.element -> (event -> unit) -> unit
(** Replay a materialized subtree as events, in document order.  The
    exact inverse of {!Collect}: collecting [emit_tree el] yields [el]
    back.  Used by the streaming dataset generators to build bounded
    subtrees with the {!Xml_ast} constructors and flush them into an
    event consumer. *)

(** Rebuilding a tree from a well-formed event sequence — the
    materializing end of the event-primitive generators ([doc] =
    collect the same events that [stream] would emit). *)
module Collect : sig
  type t

  val create : unit -> t

  val feed : t -> event -> unit
  (** @raise Invalid_argument on an ill-formed sequence (mismatched or
      stray end tags, text outside elements, a second root). *)

  val root : t -> Xml_ast.element
  (** The completed root element.
      @raise Invalid_argument if the sequence is incomplete. *)
end
