exception Parse_error of { pos : int; line : int; msg : string }

type state = { src : string; mutable pos : int; mutable line : int }

let error st fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error { pos = st.pos; line = st.line; msg })) fmt

let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]

let advance st =
  if not (eof st) then begin
    if Char.equal st.src.[st.pos] '\n' then st.line <- st.line + 1;
    st.pos <- st.pos + 1
  end

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.equal (String.sub st.src st.pos n) s

let expect st s =
  if looking_at st s then
    for _ = 1 to String.length s do
      advance st
    done
  else error st "expected %S" s

let is_space c = Char.equal c ' ' || Char.equal c '\t' || Char.equal c '\n' || Char.equal c '\r'

let skip_space st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || Char.equal c '_' || Char.equal c ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || Char.equal c '-' || Char.equal c '.'

let parse_name st =
  if not (is_name_start (peek st)) then error st "expected a name, found %C" (peek st);
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let decode_entity st =
  (* Called with the cursor just past '&'. *)
  let start = st.pos in
  while (not (eof st)) && not (Char.equal (peek st) ';') do
    advance st
  done;
  if eof st then error st "unterminated entity reference";
  let entity = String.sub st.src start (st.pos - start) in
  advance st;
  match entity with
  | "lt" -> "<"
  | "gt" -> ">"
  | "amp" -> "&"
  | "quot" -> "\""
  | "apos" -> "'"
  | _ ->
    let code =
      if String.length entity > 2 && Char.equal entity.[0] '#' && (Char.equal entity.[1] 'x' || Char.equal entity.[1] 'X')
      then int_of_string_opt ("0x" ^ String.sub entity 2 (String.length entity - 2))
      else if String.length entity > 1 && Char.equal entity.[0] '#' then
        int_of_string_opt (String.sub entity 1 (String.length entity - 1))
      else None
    in
    (match code with
    | Some c when c >= 0 && c < 128 -> String.make 1 (Char.chr c)
    | Some c ->
      (* Encode non-ASCII scalar values as UTF-8. *)
      let buf = Buffer.create 4 in
      Buffer.add_utf_8_uchar buf (Uchar.of_int c);
      Buffer.contents buf
    | None -> error st "unknown entity &%s;" entity)

let parse_attr_value st =
  let quote = peek st in
  if not (Char.equal quote '"' || Char.equal quote '\'') then
    error st "expected quoted attribute value";
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    if eof st then error st "unterminated attribute value"
    else if Char.equal (peek st) quote then advance st
    else if Char.equal (peek st) '&' then begin
      advance st;
      Buffer.add_string buf (decode_entity st);
      loop ()
    end
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      loop ()
    end
  in
  loop ();
  Buffer.contents buf

let rec parse_attrs st acc =
  skip_space st;
  if is_name_start (peek st) then begin
    let name = parse_name st in
    skip_space st;
    expect st "=";
    skip_space st;
    let value = parse_attr_value st in
    parse_attrs st ({ Xml_ast.name; value } :: acc)
  end
  else List.rev acc

let skip_until st closer =
  let n = String.length st.src and c = String.length closer in
  let rec loop () =
    if st.pos + c > n then error st "unterminated construct (expected %S)" closer
    else if looking_at st closer then expect st closer
    else begin
      advance st;
      loop ()
    end
  in
  loop ()

let skip_misc st =
  (* Comments, PIs, DOCTYPE, whitespace before/between markup. *)
  let rec loop () =
    skip_space st;
    if looking_at st "<!--" then begin
      expect st "<!--";
      skip_until st "-->";
      loop ()
    end
    else if looking_at st "<?" then begin
      expect st "<?";
      skip_until st "?>";
      loop ()
    end
    else if looking_at st "<!DOCTYPE" then begin
      expect st "<!DOCTYPE";
      (* Skip to matching '>', allowing one level of [...] internal subset. *)
      let rec doctype () =
        if eof st then error st "unterminated DOCTYPE"
        else
          match peek st with
          | '[' ->
            advance st;
            skip_until st "]";
            doctype ()
          | '>' -> advance st
          | _ ->
            advance st;
            doctype ()
      in
      doctype ();
      loop ()
    end
  in
  loop ()

let all_space s =
  let ok = ref true in
  String.iter (fun c -> if not (is_space c) then ok := false) s;
  !ok

let rec parse_element st =
  expect st "<";
  let tag = parse_name st in
  let attrs = parse_attrs st [] in
  skip_space st;
  if looking_at st "/>" then begin
    expect st "/>";
    { Xml_ast.tag; attrs; children = [] }
  end
  else begin
    expect st ">";
    let children = parse_content st [] in
    expect st "</";
    let closing = parse_name st in
    if not (String.equal closing tag) then
      error st "mismatched closing tag </%s> for <%s>" closing tag;
    skip_space st;
    expect st ">";
    { Xml_ast.tag; attrs; children }
  end

and parse_content st acc =
  if eof st then error st "unexpected end of input inside element"
  else if looking_at st "</" then List.rev acc
  else if looking_at st "<!--" then begin
    expect st "<!--";
    skip_until st "-->";
    parse_content st acc
  end
  else if looking_at st "<![CDATA[" then begin
    expect st "<![CDATA[";
    let start = st.pos in
    let rec find () =
      if eof st then error st "unterminated CDATA"
      else if looking_at st "]]>" then ()
      else begin
        advance st;
        find ()
      end
    in
    find ();
    let data = String.sub st.src start (st.pos - start) in
    expect st "]]>";
    parse_content st (Xml_ast.Text data :: acc)
  end
  else if looking_at st "<?" then begin
    expect st "<?";
    skip_until st "?>";
    parse_content st acc
  end
  else if Char.equal (peek st) '<' then
    parse_content st (Xml_ast.Element (parse_element st) :: acc)
  else begin
    let buf = Buffer.create 32 in
    let rec text () =
      if eof st || Char.equal (peek st) '<' then ()
      else if Char.equal (peek st) '&' then begin
        advance st;
        Buffer.add_string buf (decode_entity st);
        text ()
      end
      else begin
        Buffer.add_char buf (peek st);
        advance st;
        text ()
      end
    in
    text ();
    let data = Buffer.contents buf in
    if all_space data then parse_content st acc
    else parse_content st (Xml_ast.Text data :: acc)
  end

let parse_string src =
  let st = { src; pos = 0; line = 1 } in
  skip_misc st;
  if not (Char.equal (peek st) '<') then error st "expected root element";
  let root = parse_element st in
  skip_misc st;
  if not (eof st) then error st "trailing content after root element";
  { Xml_ast.root }

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      parse_string (really_input_string ic len))

let pp_error ppf = function
  | Parse_error { pos; line; msg } ->
    Format.fprintf ppf "XML parse error at line %d (offset %d): %s" line pos msg
  | exn -> raise exn
