(** Abstract syntax of XML documents.

    A deliberately small but practical model: elements, attributes and
    character data.  Comments, processing instructions and the DOCTYPE
    declaration are accepted by the parser and dropped. *)

type attr = { name : string; value : string }

type node =
  | Element of element
  | Text of string

and element = { tag : string; attrs : attr list; children : node list }

type doc = { root : element }

val element : ?attrs:(string * string) list -> string -> node list -> element
(** Convenience constructor. *)

val text : string -> node

val attr_opt : element -> string -> string option
(** First attribute with the given name, if any. *)

val n_elements : doc -> int
(** Number of element nodes in the document (root included). *)

val iter_elements : doc -> (element -> unit) -> unit
(** Pre-order traversal over every element. *)

val equal_doc : doc -> doc -> bool
