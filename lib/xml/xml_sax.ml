type event =
  | Start_element of { tag : string; attrs : Xml_ast.attr list }
  | End_element of string
  | Text of string

exception Parse_error of { line : int; msg : string }

type phase =
  | Prolog
  | Content
  | Epilog
  | Done

type t = {
  source : in_channel option;
  mutable buf : Bytes.t;
  mutable start : int;  (* first unconsumed byte *)
  mutable len : int;  (* valid bytes in buf *)
  mutable eof : bool;
  mutable line : int;
  mutable stack : string list;
  mutable phase : phase;
  mutable pending : event list;
}

let error t fmt = Printf.ksprintf (fun msg -> raise (Parse_error { line = t.line; msg })) fmt

let of_channel ?(buffer_size = 65536) ic =
  {
    source = Some ic;
    buf = Bytes.create (max 64 buffer_size);
    start = 0;
    len = 0;
    eof = false;
    line = 1;
    stack = [];
    phase = Prolog;
    pending = [];
  }

let of_string s =
  {
    source = None;
    buf = Bytes.of_string s;
    start = 0;
    len = String.length s;
    eof = true;
    line = 1;
    stack = [];
    phase = Prolog;
    pending = [];
  }

(* Make at least [n] unconsumed bytes available, or hit eof.  Returns
   the number actually available. *)
let ensure t n =
  let available () = t.len - t.start in
  if available () >= n || t.eof then available ()
  else begin
    (* compact *)
    if t.start > 0 then begin
      Bytes.blit t.buf t.start t.buf 0 (available ());
      t.len <- available ();
      t.start <- 0
    end;
    (* grow if a single token exceeds the buffer *)
    if n > Bytes.length t.buf then begin
      let bigger = Bytes.create (max n (2 * Bytes.length t.buf)) in
      Bytes.blit t.buf 0 bigger 0 t.len;
      t.buf <- bigger
    end;
    (match t.source with
    | None -> t.eof <- true
    | Some ic ->
      let rec fill () =
        if t.len < Bytes.length t.buf && not t.eof then begin
          let got = input ic t.buf t.len (Bytes.length t.buf - t.len) in
          if got = 0 then t.eof <- true
          else begin
            t.len <- t.len + got;
            if t.len - t.start < n then fill ()
          end
        end
      in
      fill ());
    available ()
  end

let peek t = if ensure t 1 >= 1 then Some (Bytes.get t.buf t.start) else None

let advance t k =
  for i = t.start to t.start + k - 1 do
    if Char.equal (Bytes.get t.buf i) '\n' then t.line <- t.line + 1
  done;
  t.start <- t.start + k

let looking_at t s =
  let n = String.length s in
  ensure t n >= n && String.equal (Bytes.sub_string t.buf t.start n) s

let eat t s =
  if looking_at t s then begin
    advance t (String.length s);
    true
  end
  else false

let expect t s = if not (eat t s) then error t "expected %S" s

let is_space c = Char.equal c ' ' || Char.equal c '\t' || Char.equal c '\n' || Char.equal c '\r'

let skip_space t =
  let continue_ = ref true in
  while !continue_ do
    match peek t with
    | Some c when is_space c -> advance t 1
    | Some _ | None -> continue_ := false
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || Char.equal c '_' || Char.equal c ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9') || Char.equal c '-' || Char.equal c '.'

let parse_name t =
  (match peek t with
  | Some c when is_name_start c -> ()
  | Some c -> error t "expected a name, found %C" c
  | None -> error t "expected a name at end of input");
  let buf = Buffer.create 16 in
  let continue_ = ref true in
  while !continue_ do
    match peek t with
    | Some c when is_name_char c ->
      Buffer.add_char buf c;
      advance t 1
    | Some _ | None -> continue_ := false
  done;
  Buffer.contents buf

let decode_entity t =
  (* cursor just past '&' *)
  let buf = Buffer.create 8 in
  let rec read () =
    match peek t with
    | Some ';' -> advance t 1
    | Some c when Buffer.length buf < 32 ->
      Buffer.add_char buf c;
      advance t 1;
      read ()
    | Some _ -> error t "entity reference too long"
    | None -> error t "unterminated entity reference"
  in
  read ();
  match Buffer.contents buf with
  | "lt" -> "<"
  | "gt" -> ">"
  | "amp" -> "&"
  | "quot" -> "\""
  | "apos" -> "'"
  | entity ->
    let code =
      if String.length entity > 2 && Char.equal entity.[0] '#'
         && (Char.equal entity.[1] 'x' || Char.equal entity.[1] 'X') then
        int_of_string_opt ("0x" ^ String.sub entity 2 (String.length entity - 2))
      else if String.length entity > 1 && Char.equal entity.[0] '#' then
        int_of_string_opt (String.sub entity 1 (String.length entity - 1))
      else None
    in
    (match code with
    | Some c when c >= 0 && c < 128 -> String.make 1 (Char.chr c)
    | Some c ->
      let b = Buffer.create 4 in
      Buffer.add_utf_8_uchar b (Uchar.of_int c);
      Buffer.contents b
    | None -> error t "unknown entity &%s;" entity)

(* Skip (or collect) everything up to and including [closer]. *)
let scan_until t ?into closer =
  let n = String.length closer in
  let rec go () =
    if looking_at t closer then advance t n
    else
      match peek t with
      | Some c ->
        (match into with Some buf -> Buffer.add_char buf c | None -> ());
        advance t 1;
        go ()
      | None -> error t "unterminated construct (expected %S)" closer
  in
  go ()

let parse_attr_value t =
  let quote =
    match peek t with
    | Some (('"' | '\'') as q) ->
      advance t 1;
      q
    | Some _ | None -> error t "expected quoted attribute value"
  in
  let buf = Buffer.create 16 in
  let rec go () =
    match peek t with
    | Some c when Char.equal c quote -> advance t 1
    | Some '&' ->
      advance t 1;
      Buffer.add_string buf (decode_entity t);
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance t 1;
      go ()
    | None -> error t "unterminated attribute value"
  in
  go ();
  Buffer.contents buf

let parse_attrs t =
  let rec go acc =
    skip_space t;
    match peek t with
    | Some c when is_name_start c ->
      let name = parse_name t in
      skip_space t;
      expect t "=";
      skip_space t;
      let value = parse_attr_value t in
      go ({ Xml_ast.name; value } :: acc)
    | Some _ | None -> List.rev acc
  in
  go []

let skip_doctype t =
  let rec go () =
    match peek t with
    | Some '[' ->
      advance t 1;
      scan_until t "]";
      go ()
    | Some '>' -> advance t 1
    | Some _ ->
      advance t 1;
      go ()
    | None -> error t "unterminated DOCTYPE"
  in
  go ()

(* Skip whitespace, comments, PIs and DOCTYPE between markup. *)
let rec skip_misc t =
  skip_space t;
  if looking_at t "<!--" then begin
    advance t 4;
    scan_until t "-->";
    skip_misc t
  end
  else if looking_at t "<!DOCTYPE" then begin
    advance t 9;
    skip_doctype t;
    skip_misc t
  end
  else if looking_at t "<?" then begin
    advance t 2;
    scan_until t "?>";
    skip_misc t
  end

let all_space s =
  let ok = ref true in
  String.iter (fun c -> if not (is_space c) then ok := false) s;
  !ok

let parse_open_tag t =
  expect t "<";
  let tag = parse_name t in
  let attrs = parse_attrs t in
  skip_space t;
  if eat t "/>" then begin
    t.pending <- [ End_element tag ];
    Start_element { tag; attrs }
  end
  else begin
    expect t ">";
    t.stack <- tag :: t.stack;
    Start_element { tag; attrs }
  end

let parse_close_tag t =
  expect t "</";
  let tag = parse_name t in
  skip_space t;
  expect t ">";
  match t.stack with
  | top :: rest when String.equal top tag ->
    t.stack <- rest;
    if rest = [] then t.phase <- Epilog;
    End_element tag
  | top :: _ -> error t "mismatched closing tag </%s> for <%s>" tag top
  | [] -> error t "closing tag </%s> without an open element" tag

let rec content_event t =
  if looking_at t "</" then parse_close_tag t
  else if looking_at t "<!--" then begin
    advance t 4;
    scan_until t "-->";
    content_event t
  end
  else if looking_at t "<![CDATA[" then begin
    advance t 9;
    let buf = Buffer.create 32 in
    scan_until t ~into:buf "]]>";
    Text (Buffer.contents buf)
  end
  else if looking_at t "<?" then begin
    advance t 2;
    scan_until t "?>";
    content_event t
  end
  else
    match peek t with
    | Some '<' -> parse_open_tag t
    | Some _ ->
      let buf = Buffer.create 32 in
      let rec text () =
        match peek t with
        | Some '<' | None -> ()
        | Some '&' ->
          advance t 1;
          Buffer.add_string buf (decode_entity t);
          text ()
        | Some c ->
          Buffer.add_char buf c;
          advance t 1;
          text ()
      in
      text ();
      let data = Buffer.contents buf in
      if all_space data then content_event t else Text data
    | None -> error t "unexpected end of input inside <%s>" (List.hd t.stack)

let rec next t =
  match t.pending with
  | event :: rest ->
    t.pending <- rest;
    if t.stack = [] && t.phase = Content then t.phase <- Epilog;
    Some event
  | [] -> (
    match t.phase with
    | Done -> None
    | Prolog ->
      skip_misc t;
      (match peek t with
      | Some '<' ->
        t.phase <- Content;
        Some (parse_open_tag t)
      | Some c -> error t "expected root element, found %C" c
      | None -> error t "empty document")
    | Epilog ->
      skip_misc t;
      (match peek t with
      | None ->
        t.phase <- Done;
        None
      | Some c -> error t "trailing content after root element (%C)" c)
    | Content ->
      if t.stack = [] then begin
        t.phase <- Epilog;
        next_epilog t
      end
      else Some (content_event t))

and next_epilog t =
  skip_misc t;
  match peek t with
  | None ->
    t.phase <- Done;
    None
  | Some c -> error t "trailing content after root element (%C)" c

let fold t ~init ~f =
  let rec go acc = match next t with Some event -> go (f acc event) | None -> acc in
  go init

let fold_string s ~init ~f = fold (of_string s) ~init ~f
let fold_channel ic ~init ~f = fold (of_channel ic) ~init ~f

let fold_file path ~init ~f =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> fold_channel ic ~init ~f)

(* Tree <-> event bridges for the streaming datagen path: generators
   emit events as the primitive, [Collect] rebuilds the tree for the
   materializing [doc] API, and [emit_tree] lets a generator build a
   bounded subtree with the ordinary Xml_ast constructors and flush it
   into the event stream. *)

let emit_tree (root : Xml_ast.element) emit =
  let rec go (el : Xml_ast.element) =
    emit (Start_element { tag = el.tag; attrs = el.attrs });
    List.iter
      (function Xml_ast.Element child -> go child | Xml_ast.Text text -> emit (Text text))
      el.children;
    emit (End_element el.tag)
  in
  go root

module Collect = struct
  type frame = {
    f_tag : string;
    f_attrs : Xml_ast.attr list;
    mutable f_children : Xml_ast.node list;  (* reverse document order *)
  }

  type t = { mutable stack : frame list; mutable result : Xml_ast.element option }

  let create () = { stack = []; result = None }

  let feed t = function
    | Start_element { tag; attrs } ->
      if t.result <> None then invalid_arg "Xml_sax.Collect: second root element";
      t.stack <- { f_tag = tag; f_attrs = attrs; f_children = [] } :: t.stack
    | Text text -> (
      match t.stack with
      | top :: _ -> top.f_children <- Xml_ast.Text text :: top.f_children
      | [] -> invalid_arg "Xml_sax.Collect: text outside any element")
    | End_element tag -> (
      match t.stack with
      | top :: rest ->
        if not (String.equal top.f_tag tag) then
          invalid_arg
            (Printf.sprintf "Xml_sax.Collect: </%s> closes <%s>" tag top.f_tag);
        let el =
          { Xml_ast.tag = top.f_tag; attrs = top.f_attrs; children = List.rev top.f_children }
        in
        t.stack <- rest;
        (match rest with
        | parent :: _ -> parent.f_children <- Xml_ast.Element el :: parent.f_children
        | [] -> t.result <- Some el)
      | [] -> invalid_arg "Xml_sax.Collect: end event without a matching start")

  let root t =
    match (t.result, t.stack) with
    | Some el, [] -> el
    | _, _ :: _ -> invalid_arg "Xml_sax.Collect.root: unclosed element"
    | None, [] -> invalid_arg "Xml_sax.Collect.root: no events fed"
end
