(** Loading an XML document into the paper's data-graph model.

    Mapping (Section 3 of the paper):
    - a single root node labeled [ROOT];
    - every element becomes a node labeled with its tag, a child of its
      containing element (tree edges);
    - every text node becomes a [VALUE]-labeled leaf;
    - every ordinary attribute becomes a node labeled with the
      attribute name, holding a [VALUE] leaf;
    - ID attributes register the element under their value;
    - IDREF(S) attributes become reference edges from the owning
      element to the target element(s).  Tree and reference edges are
      not distinguished in the graph. *)

type config = {
  id_attrs : string list;  (** attribute names that define ids, e.g. [["id"]] *)
  idref_attrs : string list;
      (** attribute names whose (space-separated) values are references *)
}

val default_config : config
(** [id_attrs = ["id"]], [idref_attrs = ["idref"; "ref"]]. *)

type result = {
  graph : Dkindex_graph.Data_graph.t;
  n_reference_edges : int;
  unresolved_refs : string list;  (** referenced ids that were never defined *)
}

val convert : ?config:config -> Xml_ast.doc -> result

val graph_of_doc : ?config:config -> Xml_ast.doc -> Dkindex_graph.Data_graph.t
(** [convert] keeping only the graph. *)

(** {1 Streaming}

    Bulk loading without materializing the document: events from
    {!Xml_sax} feed the graph builder directly, so peak memory is the
    graph plus a constant lexer buffer. *)

val convert_events : ?config:config -> Xml_sax.t -> result
val convert_file : ?config:config -> string -> result
(** Stream-parse an XML file.  Produces exactly the same graph as
    [convert (Xml_parser.parse_file path)]. *)

(** {1 Out-of-core}

    The conversion pass decoupled from its destination: a {!sink}
    receives nodes and edges, and the event consumer
    ({!stream_create} / {!stream_feed} / {!stream_finish}) performs
    exactly the mapping above against whichever sink it is given.
    [convert] and [convert_events] are this pass over a
    {!builder_sink}; {!stream_to_container} runs it over a
    {!Dkindex_graph.Graph_stream} sink, writing a container file
    without materializing the graph.  Node ids are allocated in call
    order by both sinks, so the two destinations yield identical
    graphs — byte-identical container files, per
    {!Dkindex_graph.Graph_stream}. *)

type sink = {
  sink_root : int;
  sink_add_child : parent:int -> string -> int;
  sink_add_value : parent:int -> text:string option -> int;
  sink_add_edge : int -> int -> unit;
}

val builder_sink : Dkindex_graph.Builder.t -> sink
val stream_sink : Dkindex_graph.Graph_stream.t -> sink

type stream
(** An in-progress conversion: element stack, id table and pending
    references. *)

val stream_create : ?config:config -> sink -> stream

val stream_feed : stream -> Xml_sax.event -> unit
(** @raise Invalid_argument on events outside the root element. *)

val stream_finish : stream -> int * string list
(** Resolve pending references (adding the reference edges) and return
    [(n_reference_edges, unresolved_refs)]. *)

val stream_to_container :
  ?config:config ->
  ?mem_budget:int ->
  ?tmp_dir:string ->
  path:string ->
  ((Xml_sax.event -> unit) -> unit) ->
  int * string list
(** [stream_to_container ~path events] feeds the events that
    [events emit] produces through the conversion into a
    {!Dkindex_graph.Graph_stream} and finishes the container at
    [path].  Returns [(n_reference_edges, unresolved_refs)].  On any
    exception the partial output is aborted and the exception
    reraised. *)
