(** Loading an XML document into the paper's data-graph model.

    Mapping (Section 3 of the paper):
    - a single root node labeled [ROOT];
    - every element becomes a node labeled with its tag, a child of its
      containing element (tree edges);
    - every text node becomes a [VALUE]-labeled leaf;
    - every ordinary attribute becomes a node labeled with the
      attribute name, holding a [VALUE] leaf;
    - ID attributes register the element under their value;
    - IDREF(S) attributes become reference edges from the owning
      element to the target element(s).  Tree and reference edges are
      not distinguished in the graph. *)

type config = {
  id_attrs : string list;  (** attribute names that define ids, e.g. [["id"]] *)
  idref_attrs : string list;
      (** attribute names whose (space-separated) values are references *)
}

val default_config : config
(** [id_attrs = ["id"]], [idref_attrs = ["idref"; "ref"]]. *)

type result = {
  graph : Dkindex_graph.Data_graph.t;
  n_reference_edges : int;
  unresolved_refs : string list;  (** referenced ids that were never defined *)
}

val convert : ?config:config -> Xml_ast.doc -> result

val graph_of_doc : ?config:config -> Xml_ast.doc -> Dkindex_graph.Data_graph.t
(** [convert] keeping only the graph. *)

(** {1 Streaming}

    Bulk loading without materializing the document: events from
    {!Xml_sax} feed the graph builder directly, so peak memory is the
    graph plus a constant lexer buffer. *)

val convert_events : ?config:config -> Xml_sax.t -> result
val convert_file : ?config:config -> string -> result
(** Stream-parse an XML file.  Produces exactly the same graph as
    [convert (Xml_parser.parse_file path)]. *)
