(** A recursive-descent parser for the XML subset of {!Xml_ast}.

    Supported: the XML declaration, DOCTYPE (skipped), comments
    (skipped), processing instructions (skipped), CDATA sections,
    elements with attributes (single or double quoted), character data
    with the five predefined entities and decimal / hexadecimal
    character references.  Namespaces are not interpreted (prefixes
    stay part of the tag name), and DTD-internal subsets are skipped
    textually.

    Whitespace-only text between elements is dropped; other text is
    kept verbatim. *)

exception Parse_error of { pos : int; line : int; msg : string }

val parse_string : string -> Xml_ast.doc
(** @raise Parse_error on malformed input. *)

val parse_file : string -> Xml_ast.doc

val pp_error : Format.formatter -> exn -> unit
(** Pretty-print a {!Parse_error}; re-raises other exceptions. *)
