type config = { id_attrs : string list; idref_attrs : string list }

let default_config = { id_attrs = [ "id" ]; idref_attrs = [ "idref"; "ref" ] }

type result = {
  graph : Dkindex_graph.Data_graph.t;
  n_reference_edges : int;
  unresolved_refs : string list;
}

module B = Dkindex_graph.Builder

let split_refs value =
  String.split_on_char ' ' value |> List.filter (fun s -> not (String.equal s ""))

let convert ?(config = default_config) doc =
  let builder = B.create () in
  let ids = Hashtbl.create 256 in
  (* pending references: (source node, target id string) *)
  let pending = ref [] in
  let is_id name = List.mem name config.id_attrs in
  let is_idref name = List.mem name config.idref_attrs in
  let rec emit parent (el : Xml_ast.element) =
    let node = B.add_child builder ~parent el.tag in
    List.iter
      (fun (a : Xml_ast.attr) ->
        if is_id a.name then Hashtbl.replace ids a.value node
        else if is_idref a.name then
          List.iter (fun target -> pending := (node, target) :: !pending) (split_refs a.value)
        else begin
          let attr_node = B.add_child builder ~parent:node a.name in
          ignore (B.add_value builder ~parent:attr_node ~text:a.value)
        end)
      el.attrs;
    List.iter
      (function
        | Xml_ast.Element child -> emit node child
        | Xml_ast.Text text -> ignore (B.add_value builder ~parent:node ~text))
      el.children
  in
  emit (B.root builder) doc.Xml_ast.root;
  let unresolved = ref [] and n_refs = ref 0 in
  List.iter
    (fun (source, target) ->
      match Hashtbl.find_opt ids target with
      | Some node ->
        B.add_edge builder source node;
        incr n_refs
      | None -> unresolved := target :: !unresolved)
    !pending;
  {
    graph = B.build builder;
    n_reference_edges = !n_refs;
    unresolved_refs = List.rev !unresolved;
  }

let graph_of_doc ?config doc = (convert ?config doc).graph

let convert_events ?(config = default_config) stream =
  let builder = B.create () in
  let ids = Hashtbl.create 256 in
  let pending = ref [] in
  let is_id name = List.mem name config.id_attrs in
  let is_idref name = List.mem name config.idref_attrs in
  let stack = ref [ B.root builder ] in
  let top () = match !stack with node :: _ -> node | [] -> assert false in
  Xml_sax.fold stream ~init:() ~f:(fun () event ->
      match event with
      | Xml_sax.Start_element { tag; attrs } ->
        let node = B.add_child builder ~parent:(top ()) tag in
        List.iter
          (fun (a : Xml_ast.attr) ->
            if is_id a.name then Hashtbl.replace ids a.value node
            else if is_idref a.name then
              List.iter
                (fun target -> pending := (node, target) :: !pending)
                (split_refs a.value)
            else begin
              let attr_node = B.add_child builder ~parent:node a.name in
              ignore (B.add_value builder ~parent:attr_node ~text:a.value)
            end)
          attrs;
        stack := node :: !stack
      | Xml_sax.End_element _ -> stack := List.tl !stack
      | Xml_sax.Text text -> ignore (B.add_value builder ~parent:(top ()) ~text));
  let unresolved = ref [] and n_refs = ref 0 in
  List.iter
    (fun (source, target) ->
      match Hashtbl.find_opt ids target with
      | Some node ->
        B.add_edge builder source node;
        incr n_refs
      | None -> unresolved := target :: !unresolved)
    !pending;
  {
    graph = B.build builder;
    n_reference_edges = !n_refs;
    unresolved_refs = List.rev !unresolved;
  }

let convert_file ?config path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> convert_events ?config (Xml_sax.of_channel ic))
