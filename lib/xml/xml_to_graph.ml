type config = { id_attrs : string list; idref_attrs : string list }

let default_config = { id_attrs = [ "id" ]; idref_attrs = [ "idref"; "ref" ] }

type result = {
  graph : Dkindex_graph.Data_graph.t;
  n_reference_edges : int;
  unresolved_refs : string list;
}

module B = Dkindex_graph.Builder
module GS = Dkindex_graph.Graph_stream

let split_refs value =
  String.split_on_char ' ' value |> List.filter (fun s -> not (String.equal s ""))

(* Where converted nodes and edges go.  The same conversion pass
   serves the in-RAM [Builder] and the out-of-core [Graph_stream] —
   both allocate node ids in call order, so the two sinks produce
   identical graphs from the same event sequence. *)
type sink = {
  sink_root : int;
  sink_add_child : parent:int -> string -> int;
  sink_add_value : parent:int -> text:string option -> int;
  sink_add_edge : int -> int -> unit;
}

let builder_sink b =
  {
    sink_root = B.root b;
    sink_add_child = (fun ~parent tag -> B.add_child b ~parent tag);
    sink_add_value = (fun ~parent ~text -> B.add_value ?text b ~parent);
    sink_add_edge = (fun u v -> B.add_edge b u v);
  }

let stream_sink gs =
  {
    sink_root = GS.root gs;
    sink_add_child = (fun ~parent tag -> GS.add_child gs ~parent tag);
    sink_add_value = (fun ~parent ~text -> GS.add_value ?text gs ~parent);
    sink_add_edge = (fun u v -> GS.add_edge gs u v);
  }

type stream = {
  s_config : config;
  s_sink : sink;
  s_ids : (string, int) Hashtbl.t;
  mutable s_pending : (int * string) list;  (* (source node, target id string) *)
  mutable s_stack : int list;
}

let stream_create ?(config = default_config) sink =
  {
    s_config = config;
    s_sink = sink;
    s_ids = Hashtbl.create 256;
    s_pending = [];
    s_stack = [ sink.sink_root ];
  }

let stream_feed st (event : Xml_sax.event) =
  let top () =
    match st.s_stack with
    | node :: _ -> node
    | [] -> invalid_arg "Xml_to_graph.stream_feed: event after the root closed"
  in
  match event with
  | Xml_sax.Start_element { tag; attrs } ->
    let node = st.s_sink.sink_add_child ~parent:(top ()) tag in
    List.iter
      (fun (a : Xml_ast.attr) ->
        if List.mem a.name st.s_config.id_attrs then Hashtbl.replace st.s_ids a.value node
        else if List.mem a.name st.s_config.idref_attrs then
          List.iter
            (fun target -> st.s_pending <- (node, target) :: st.s_pending)
            (split_refs a.value)
        else begin
          let attr_node = st.s_sink.sink_add_child ~parent:node a.name in
          ignore (st.s_sink.sink_add_value ~parent:attr_node ~text:(Some a.value))
        end)
      attrs;
    st.s_stack <- node :: st.s_stack
  | Xml_sax.End_element _ -> (
    match st.s_stack with
    | _ :: rest -> st.s_stack <- rest
    | [] -> invalid_arg "Xml_to_graph.stream_feed: unmatched end event")
  | Xml_sax.Text text -> ignore (st.s_sink.sink_add_value ~parent:(top ()) ~text:(Some text))

let stream_finish st =
  let unresolved = ref [] and n_refs = ref 0 in
  List.iter
    (fun (source, target) ->
      match Hashtbl.find_opt st.s_ids target with
      | Some node ->
        st.s_sink.sink_add_edge source node;
        incr n_refs
      | None -> unresolved := target :: !unresolved)
    st.s_pending;
  (!n_refs, List.rev !unresolved)

let convert ?config doc =
  let builder = B.create () in
  let st = stream_create ?config (builder_sink builder) in
  Xml_sax.emit_tree doc.Xml_ast.root (stream_feed st);
  let n_refs, unresolved = stream_finish st in
  { graph = B.build builder; n_reference_edges = n_refs; unresolved_refs = unresolved }

let graph_of_doc ?config doc = (convert ?config doc).graph

let convert_events ?config stream =
  let builder = B.create () in
  let st = stream_create ?config (builder_sink builder) in
  Xml_sax.fold stream ~init:() ~f:(fun () event -> stream_feed st event);
  let n_refs, unresolved = stream_finish st in
  { graph = B.build builder; n_reference_edges = n_refs; unresolved_refs = unresolved }

let convert_file ?config path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> convert_events ?config (Xml_sax.of_channel ic))

let stream_to_container ?config ?mem_budget ?tmp_dir ~path events =
  let gs = GS.create ?mem_budget ?tmp_dir ~path () in
  match
    let st = stream_create ?config (stream_sink gs) in
    events (stream_feed st);
    stream_finish st
  with
  | stats ->
    GS.finish gs;
    stats
  | exception e ->
    GS.abort gs;
    raise e
