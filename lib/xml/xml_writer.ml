let escape ~quotes s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' when quotes -> Buffer.add_string buf "&quot;"
      | '\'' when quotes -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_text = escape ~quotes:false
let escape_attr = escape ~quotes:true

let doc_to_string ?(indent = true) doc =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  let pad level = if indent then Buffer.add_string buf (String.make (2 * level) ' ') in
  let newline () = if indent then Buffer.add_char buf '\n' in
  let open_tag (el : Xml_ast.element) =
    Buffer.add_char buf '<';
    Buffer.add_string buf el.tag;
    List.iter
      (fun (a : Xml_ast.attr) ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf a.name;
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (escape_attr a.value);
        Buffer.add_char buf '"')
      el.attrs
  in
  let has_text_child el =
    List.exists (function Xml_ast.Text _ -> true | Xml_ast.Element _ -> false) el.Xml_ast.children
  in
  (* Mixed and text-only content is emitted without any added
     whitespace: indentation inside it would change the text nodes a
     parser reads back. *)
  let rec emit_inline (el : Xml_ast.element) =
    open_tag el;
    match el.children with
    | [] -> Buffer.add_string buf "/>"
    | children ->
      Buffer.add_char buf '>';
      List.iter
        (function
          | Xml_ast.Text s -> Buffer.add_string buf (escape_text s)
          | Xml_ast.Element child -> emit_inline child)
        children;
      Buffer.add_string buf "</";
      Buffer.add_string buf el.tag;
      Buffer.add_char buf '>'
  in
  let rec emit level (el : Xml_ast.element) =
    pad level;
    if has_text_child el then begin
      emit_inline el;
      newline ()
    end
    else
      match el.children with
      | [] ->
        open_tag el;
        Buffer.add_string buf "/>";
        newline ()
      | children ->
        open_tag el;
        Buffer.add_char buf '>';
        newline ();
        List.iter
          (function
            | Xml_ast.Element child -> emit (level + 1) child
            | Xml_ast.Text _ -> assert false)
          children;
        pad level;
        Buffer.add_string buf "</";
        Buffer.add_string buf el.tag;
        Buffer.add_char buf '>';
        newline ()
  in
  emit 0 doc.Xml_ast.root;
  Buffer.contents buf

let write_file ?indent path doc =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (doc_to_string ?indent doc))
