type attr = { name : string; value : string }

type node =
  | Element of element
  | Text of string

and element = { tag : string; attrs : attr list; children : node list }

type doc = { root : element }

let element ?(attrs = []) tag children =
  { tag; attrs = List.map (fun (name, value) -> { name; value }) attrs; children }

let text s = Text s

let attr_opt el name =
  List.find_map (fun a -> if String.equal a.name name then Some a.value else None) el.attrs

let iter_elements doc f =
  let rec go el =
    f el;
    List.iter (function Element child -> go child | Text _ -> ()) el.children
  in
  go doc.root

let n_elements doc =
  let count = ref 0 in
  iter_elements doc (fun _ -> incr count);
  !count

let rec equal_element a b =
  String.equal a.tag b.tag
  && List.length a.attrs = List.length b.attrs
  && List.for_all2
       (fun x y -> String.equal x.name y.name && String.equal x.value y.value)
       a.attrs b.attrs
  && List.length a.children = List.length b.children
  && List.for_all2 equal_node a.children b.children

and equal_node a b =
  match (a, b) with
  | Element a, Element b -> equal_element a b
  | Text a, Text b -> String.equal a b
  | Element _, Text _ | Text _, Element _ -> false

let equal_doc a b = equal_element a.root b.root
