(** Serialization of {!Xml_ast} documents. *)

val escape_text : string -> string
val escape_attr : string -> string

val doc_to_string : ?indent:bool -> Xml_ast.doc -> string
(** With [indent] (default [true]), elements are pretty-printed two
    spaces per level; text content is emitted inline so mixed content
    survives a round trip through {!Xml_parser} (which drops
    whitespace-only text). *)

val write_file : ?indent:bool -> string -> Xml_ast.doc -> unit
