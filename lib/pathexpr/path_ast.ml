type t =
  | Any
  | Label of string
  | Seq of t * t
  | Alt of t * t
  | Opt of t
  | Star of t

let seq_of_labels = function
  | [] -> invalid_arg "Path_ast.seq_of_labels: empty path"
  | first :: rest -> List.fold_left (fun acc l -> Seq (acc, Label l)) (Label first) rest

let rec as_label_seq = function
  | Label l -> Some [ l ]
  | Seq (a, b) -> (
    match (as_label_seq a, as_label_seq b) with
    | Some xs, Some ys -> Some (xs @ ys)
    | _, _ -> None)
  | Any | Alt _ | Opt _ | Star _ -> None

let rec max_word_length = function
  | Any | Label _ -> Some 1
  | Seq (a, b) -> (
    match (max_word_length a, max_word_length b) with
    | Some x, Some y -> Some (x + y)
    | _, _ -> None)
  | Alt (a, b) -> (
    match (max_word_length a, max_word_length b) with
    | Some x, Some y -> Some (max x y)
    | _, _ -> None)
  | Opt a -> max_word_length a
  | Star a -> ( match max_word_length a with Some 0 -> Some 0 | Some _ | None -> None)

let rec min_word_length = function
  | Any | Label _ -> 1
  | Seq (a, b) -> min_word_length a + min_word_length b
  | Alt (a, b) -> min (min_word_length a) (min_word_length b)
  | Opt _ | Star _ -> 0

let labels expr =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Any -> ()
    | Label l ->
      if not (Hashtbl.mem seen l) then begin
        Hashtbl.add seen l ();
        acc := l :: !acc
      end
    | Seq (a, b) | Alt (a, b) ->
      go a;
      go b
    | Opt a | Star a -> go a
  in
  go expr;
  List.rev !acc

(* Precedence: Alt < Seq < postfix.  Parenthesize when a lower-precedence
   construct appears under a higher-precedence one. *)
let rec pp_prec prec ppf t =
  let open Format in
  match t with
  | Any -> pp_print_char ppf '_'
  | Label l -> pp_print_string ppf l
  | Seq (a, b) ->
    let doc ppf () = fprintf ppf "%a.%a" (pp_prec 1) a (pp_prec 1) b in
    if prec > 1 then fprintf ppf "(%a)" doc () else doc ppf ()
  | Alt (a, b) ->
    let doc ppf () = fprintf ppf "%a|%a" (pp_prec 0) a (pp_prec 0) b in
    if prec > 0 then fprintf ppf "(%a)" doc () else doc ppf ()
  | Opt a -> fprintf ppf "%a?" (pp_prec 2) a
  | Star a -> fprintf ppf "%a*" (pp_prec 2) a

let pp ppf t = pp_prec 0 ppf t
let to_string t = Format.asprintf "%a" pp t

let equal = ( = )

(* ------------------------------------------------------------------ *)
(* Wire form: a prefix encoding used by the dkserve protocol.  One tag
   byte per constructor; [Label] carries a 16-bit big-endian length and
   the raw bytes.  The decoder is total on arbitrary byte strings: any
   malformed, truncated, oversized or over-deep input yields [Error],
   never an exception or unbounded work. *)

let encode buf t =
  let add_u16 n =
    Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
    Buffer.add_char buf (Char.chr (n land 0xff))
  in
  let rec go = function
    | Any -> Buffer.add_char buf '\000'
    | Label l ->
      if String.length l > 0xffff then invalid_arg "Path_ast.encode: label too long";
      Buffer.add_char buf '\001';
      add_u16 (String.length l);
      Buffer.add_string buf l
    | Seq (a, b) ->
      Buffer.add_char buf '\002';
      go a;
      go b
    | Alt (a, b) ->
      Buffer.add_char buf '\003';
      go a;
      go b
    | Opt a ->
      Buffer.add_char buf '\004';
      go a
    | Star a ->
      Buffer.add_char buf '\005';
      go a
  in
  go t

let max_decode_nodes = 65_536
let max_decode_depth = 4_096

exception Bad of string

let decode s ~pos =
  let len = String.length s in
  let budget = ref max_decode_nodes in
  let rec go pos depth =
    if depth > max_decode_depth then raise (Bad "expression too deep");
    decr budget;
    if !budget < 0 then raise (Bad "expression too large");
    if pos < 0 || pos >= len then raise (Bad "truncated expression");
    match s.[pos] with
    | '\000' -> (Any, pos + 1)
    | '\001' ->
      if pos + 3 > len then raise (Bad "truncated label");
      let n = (Char.code s.[pos + 1] lsl 8) lor Char.code s.[pos + 2] in
      if pos + 3 + n > len then raise (Bad "truncated label");
      (Label (String.sub s (pos + 3) n), pos + 3 + n)
    | '\002' ->
      let a, p = go (pos + 1) (depth + 1) in
      let b, p = go p (depth + 1) in
      (Seq (a, b), p)
    | '\003' ->
      let a, p = go (pos + 1) (depth + 1) in
      let b, p = go p (depth + 1) in
      (Alt (a, b), p)
    | '\004' ->
      let a, p = go (pos + 1) (depth + 1) in
      (Opt a, p)
    | '\005' ->
      let a, p = go (pos + 1) (depth + 1) in
      (Star a, p)
    | c -> raise (Bad (Printf.sprintf "bad expression tag 0x%02x" (Char.code c)))
  in
  match go pos 0 with
  | t, p -> Ok (t, p)
  | exception Bad msg -> Error msg
