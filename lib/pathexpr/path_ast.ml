type t =
  | Any
  | Label of string
  | Seq of t * t
  | Alt of t * t
  | Opt of t
  | Star of t

let seq_of_labels = function
  | [] -> invalid_arg "Path_ast.seq_of_labels: empty path"
  | first :: rest -> List.fold_left (fun acc l -> Seq (acc, Label l)) (Label first) rest

let rec as_label_seq = function
  | Label l -> Some [ l ]
  | Seq (a, b) -> (
    match (as_label_seq a, as_label_seq b) with
    | Some xs, Some ys -> Some (xs @ ys)
    | _, _ -> None)
  | Any | Alt _ | Opt _ | Star _ -> None

let rec max_word_length = function
  | Any | Label _ -> Some 1
  | Seq (a, b) -> (
    match (max_word_length a, max_word_length b) with
    | Some x, Some y -> Some (x + y)
    | _, _ -> None)
  | Alt (a, b) -> (
    match (max_word_length a, max_word_length b) with
    | Some x, Some y -> Some (max x y)
    | _, _ -> None)
  | Opt a -> max_word_length a
  | Star a -> ( match max_word_length a with Some 0 -> Some 0 | Some _ | None -> None)

let rec min_word_length = function
  | Any | Label _ -> 1
  | Seq (a, b) -> min_word_length a + min_word_length b
  | Alt (a, b) -> min (min_word_length a) (min_word_length b)
  | Opt _ | Star _ -> 0

let labels expr =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Any -> ()
    | Label l ->
      if not (Hashtbl.mem seen l) then begin
        Hashtbl.add seen l ();
        acc := l :: !acc
      end
    | Seq (a, b) | Alt (a, b) ->
      go a;
      go b
    | Opt a | Star a -> go a
  in
  go expr;
  List.rev !acc

(* Precedence: Alt < Seq < postfix.  Parenthesize when a lower-precedence
   construct appears under a higher-precedence one. *)
let rec pp_prec prec ppf t =
  let open Format in
  match t with
  | Any -> pp_print_char ppf '_'
  | Label l -> pp_print_string ppf l
  | Seq (a, b) ->
    let doc ppf () = fprintf ppf "%a.%a" (pp_prec 1) a (pp_prec 1) b in
    if prec > 1 then fprintf ppf "(%a)" doc () else doc ppf ()
  | Alt (a, b) ->
    let doc ppf () = fprintf ppf "%a|%a" (pp_prec 0) a (pp_prec 0) b in
    if prec > 0 then fprintf ppf "(%a)" doc () else doc ppf ()
  | Opt a -> fprintf ppf "%a?" (pp_prec 2) a
  | Star a -> fprintf ppf "%a*" (pp_prec 2) a

let pp ppf t = pp_prec 0 ppf t
let to_string t = Format.asprintf "%a" pp t

let equal = ( = )
