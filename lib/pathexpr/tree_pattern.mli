(** Branching path queries (tree patterns).

    The paper's future-work section points at the F&B-index (Kaushik et
    al., SIGMOD 2002), the covering index for {e branching} path
    queries; this module supplies the query language those indexes
    answer: a tree of label tests connected by child ([/]) and
    descendant ([//]) axes, with predicates in brackets.  The result of
    a pattern is the set of data nodes matched by the {e last step of
    its main path}; all predicate branches are existential filters.

    Concrete syntax (an XPath subset):
    {v
    pattern := ('/' | '//') step (('/' | '//') step)*
    step    := (name | '*') pred*
    pred    := '[' ('.//' | './')? step (('/' | '//') step)* ']'
             | '[' '.' '=' '"' text '"' ']'
    v}
    The leading axis is relative to the root, e.g.
    [//movie[.//actor]/title] or [//person[./name[.="Kian"]]].

    Value predicates compare atomic payloads
    ({!Dkindex_graph.Data_graph.value}); index graphs carry no
    payloads, so evaluation through an index treats them as
    over-approximations to be settled by validation. *)

type axis = Child | Descendant

type node = {
  label : string option;  (** [None] for [*] *)
  value_test : string option;
      (** [Some s] requires the node's atomic content to equal [s]: it
          matches when the node itself carries payload [s] or has a
          [VALUE] child carrying it (the [[.="s"]] predicate) *)
  preds : (axis * node) list;
}

type t = { steps : (axis * node) list }  (** non-empty; first axis from the root *)

exception Parse_error of { pos : int; msg : string }

val parse : string -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Evaluation}

    Evaluation is generic over an integer-node graph so the same code
    runs on the data graph and on index graphs. *)

type view = {
  root : int;
  label_name : int -> string;
  children : int -> int list;
  check_value : int -> string -> bool;
      (** value-predicate oracle; an index view answers [true]
          (over-approximation), the data view compares payloads *)
  visit : int -> unit;  (** cost hook, called once per node expansion *)
}

val data_view : Dkindex_graph.Data_graph.t -> cost:Cost.t -> view

val has_value_test : t -> bool
(** Does any node of the pattern carry a value predicate? *)

val eval : view -> t -> int list
(** Matching node ids of the main path's last step, sorted. *)

val descendants : view -> int -> int list
(** Strict descendants of a node (its children and everything reachable
    below, which can include the node itself on a cycle). *)

val matches_at : view -> node -> int -> bool
(** Does the (single) pattern node with its predicate subtree accept
    this graph node?  Exposed for validation. *)
