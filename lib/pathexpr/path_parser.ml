exception Parse_error of { pos : int; msg : string }

type state = { src : string; mutable pos : int }

let error st fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error { pos = st.pos; msg })) fmt

let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]

let skip_space st =
  while (not (eof st)) && (Char.equal (peek st) ' ' || Char.equal (peek st) '\t') do
    st.pos <- st.pos + 1
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || Char.equal c '_' || Char.equal c ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || Char.equal c '-'

let parse_name st =
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    st.pos <- st.pos + 1
  done;
  String.sub st.src start (st.pos - start)

let rec parse_expr st =
  let left = parse_seq st in
  skip_space st;
  if (not (eof st)) && Char.equal (peek st) '|' then begin
    st.pos <- st.pos + 1;
    Path_ast.Alt (left, parse_expr st)
  end
  else left

and parse_seq st =
  let left = parse_postfix st in
  skip_space st;
  if (not (eof st)) && Char.equal (peek st) '.' then begin
    st.pos <- st.pos + 1;
    match parse_seq st with
    (* Re-associate to the left so as_label_seq prints naturally. *)
    | rest -> Path_ast.Seq (left, rest)
  end
  else left

and parse_postfix st =
  let atom = ref (parse_atom st) in
  let rec loop () =
    skip_space st;
    match peek st with
    | '*' ->
      st.pos <- st.pos + 1;
      atom := Path_ast.Star !atom;
      loop ()
    | '?' ->
      st.pos <- st.pos + 1;
      atom := Path_ast.Opt !atom;
      loop ()
    | _ -> ()
  in
  loop ();
  !atom

and parse_atom st =
  skip_space st;
  if eof st then error st "unexpected end of expression"
  else
    match peek st with
    | '(' ->
      st.pos <- st.pos + 1;
      let inner = parse_expr st in
      skip_space st;
      if Char.equal (peek st) ')' then begin
        st.pos <- st.pos + 1;
        inner
      end
      else error st "expected ')'"
    | c when is_name_start c ->
      let name = parse_name st in
      if String.equal name "_" then Path_ast.Any else Path_ast.Label name
    | c -> error st "unexpected character %C" c

let parse src =
  let st = { src; pos = 0 } in
  let expr = parse_expr st in
  skip_space st;
  if not (eof st) then error st "trailing input";
  expr

let parse_opt src = match parse src with
  | expr -> Some expr
  | exception Parse_error _ -> None
