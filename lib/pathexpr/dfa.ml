module Label = Dkindex_graph.Label

type t = {
  n_labels : int;
  delta : int array;  (* state * n_labels + label -> state, -1 dead *)
  accept : bool array;
  start : int;
}

exception Too_large of int

let of_nfa ?(max_states = 4096) ~n_labels nfa =
  (* Subset construction keyed by the NFA state set's string image. *)
  let key set =
    let buf = Buffer.create 16 in
    Bitset.iter set (fun q ->
        Buffer.add_string buf (string_of_int q);
        Buffer.add_char buf ',');
    Buffer.contents buf
  in
  let ids : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let sets = ref [] and count = ref 0 in
  let queue = Queue.create () in
  let intern set =
    let k = key set in
    match Hashtbl.find_opt ids k with
    | Some id -> id
    | None ->
      if !count >= max_states then raise (Too_large !count);
      let id = !count in
      incr count;
      Hashtbl.add ids k id;
      sets := (id, set) :: !sets;
      Queue.add (id, set) queue;
      id
  in
  let transitions = ref [] in
  let start = intern (Nfa.initial nfa) in
  while not (Queue.is_empty queue) do
    let id, set = Queue.pop queue in
    for code = 0 to n_labels - 1 do
      let next = Nfa.step nfa set (Label.of_int code) in
      if not (Bitset.is_empty next) then begin
        let nid = intern next in
        transitions := (id, code, nid) :: !transitions
      end
    done
  done;
  let n = !count in
  let delta = Array.make (n * n_labels) (-1) in
  List.iter (fun (id, code, nid) -> delta.((id * n_labels) + code) <- nid) !transitions;
  let accept = Array.make n false in
  List.iter (fun (id, set) -> accept.(id) <- Nfa.accepting nfa set) !sets;
  { n_labels; delta; accept; start }

let compile ?max_states pool expr =
  of_nfa ?max_states ~n_labels:(Label.Pool.count pool) (Nfa.compile pool expr)

let n_states t = Array.length t.accept
let start t = t.start

let step t state l =
  if state < 0 then -1
  else
    let code = Label.to_int l in
    if code < 0 || code >= t.n_labels then -1 else t.delta.((state * t.n_labels) + code)

let accepting t state = state >= 0 && t.accept.(state)

let accepts_word t word =
  accepting t (List.fold_left (fun state l -> step t state l) t.start word)
