(** Thompson construction of a nondeterministic finite automaton from a
    path expression, over interned label codes.

    Labels mentioned by the expression that do not occur in the data
    graph's pool compile to transitions that can never fire. *)

type t

val compile : Dkindex_graph.Label.Pool.t -> Path_ast.t -> t

val n_states : t -> int

val initial : t -> Bitset.t
(** Epsilon closure of the start state (a fresh set). *)

val step : t -> Bitset.t -> Dkindex_graph.Label.t -> Bitset.t
(** [step nfa states l] consumes one label and returns the epsilon
    closure of the successor set (a fresh set). *)

val accepting : t -> Bitset.t -> bool

val is_accepting_state : t -> int -> bool
(** [is_accepting_state t q] — whether [q]'s epsilon closure contains
    the accept state.  Backed by a bitset precomputed at {!compile}
    time; O(1), no allocation.  On epsilon-closed state sets,
    [accepting t s] holds iff [s] contains some accepting state. *)

type table
(** Dense [(state, label code)] transition table: each cell holds the
    epsilon-closed successor set of stepping that single state by that
    label.  Replaces repeated {!step} calls on singleton sets in inner
    evaluation loops. *)

val transition_table : t -> n_labels:int -> table
(** Precompute the table for label codes [0 .. n_labels - 1] (use the
    label pool's count).  O(states * labels) space. *)

val table_step : table -> int -> int -> Bitset.t
(** [table_step table q code] is the cached, epsilon-closed result of
    stepping state [q] by label [code].  The returned set is shared —
    do not mutate it. *)

val accepts_word : t -> Dkindex_graph.Label.t list -> bool
(** Direct word membership, used by tests as an oracle. *)
