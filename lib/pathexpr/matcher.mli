(** Path expression evaluation directly on the data graph.

    A node is in the result when some node path ending at it matches
    the expression; paths may start anywhere (the paper's
    partial-match semantics).  Every function charges the nodes it
    touches to the supplied {!Cost.t}. *)

open Dkindex_graph

val eval_nfa : Data_graph.t -> Nfa.t -> cost:Cost.t -> int list
(** Full regular path expression evaluation via product reachability of
    (node, NFA-state set); returns matching node ids, sorted. *)

val eval_dfa : Data_graph.t -> Dfa.t -> cost:Cost.t -> int list
(** Same result through a determinized automaton: each graph node
    carries a set of integer DFA states instead of NFA bitset unions —
    the faster choice for repeated evaluation (and the cost model
    counts the same node visits). *)

val eval_label_path : Data_graph.t -> Label.t array -> cost:Cost.t -> int list
(** Specialized evaluation for plain label sequences, the workload of
    the paper's experiments; equivalent to {!eval_nfa} on the same
    query but cheaper.  Returns matching node ids, sorted. *)

val make_path_validator :
  ?memo:(int * int, bool) Hashtbl.t ->
  Data_graph.t ->
  Label.t array ->
  cost:Cost.t ->
  int ->
  bool
(** [make_path_validator g path ~cost] returns a predicate deciding
    whether the label path matches a given node, by walking parent
    edges backwards.  Memoized across calls: validating many candidate
    nodes of one query shares work, as an implementation would.  This
    is the paper's validation step; every (node, position) pair
    explored counts as one data-node visit.

    [memo] supplies an external [(node, position) -> bool] table to use
    instead of a fresh private one, letting a cache keep validation
    work alive across queries ({!Validation_cache}).  Entries are only
    valid for a fixed data graph and the same [path]. *)

val node_matches_nfa : Data_graph.t -> Nfa.t -> node:int -> cost:Cost.t -> bool
(** General (regex) validation of a single node: computes backward
    state sets over the node's ancestor closure.  Used for queries that
    are not plain label paths. *)
