(** The paper's in-memory query cost model (Section 6.1): the cost of a
    query is the number of nodes visited during evaluation.  Index
    nodes and data nodes visited during validation are both counted;
    data nodes in the extents of matched index nodes are free. *)

type t = { mutable index_visits : int; mutable data_visits : int }

val create : unit -> t
val total : t -> int
val visit_index : t -> unit
val visit_data : t -> unit
val add : t -> t -> unit
(** [add acc c] accumulates [c] into [acc]. *)

val pp : Format.formatter -> t -> unit
