type t = { words : int array; n : int }

let bits = 63
let n_words n = ((max n 1) + bits - 1) / bits
let create n = { words = Array.make (n_words n) 0; n }
let capacity t = t.n
let copy t = { words = Array.copy t.words; n = t.n }

let check t i =
  if i < 0 || i >= t.n then invalid_arg (Printf.sprintf "Bitset: %d out of range" i)

let add t i =
  check t i;
  t.words.(i / bits) <- t.words.(i / bits) lor (1 lsl (i mod bits))

let mem t i =
  check t i;
  t.words.(i / bits) land (1 lsl (i mod bits)) <> 0

let is_empty t = Array.for_all (fun w -> w = 0) t.words
let equal a b = a.n = b.n && Array.for_all2 ( = ) a.words b.words

let cardinal t =
  let count = ref 0 in
  Array.iter
    (fun w ->
      let w = ref w in
      while !w <> 0 do
        w := !w land (!w - 1);
        incr count
      done)
    t.words;
  !count

let union_into ~dst src =
  if dst.n <> src.n then invalid_arg "Bitset.union_into: capacity mismatch";
  let changed = ref false in
  for i = 0 to Array.length dst.words - 1 do
    let merged = dst.words.(i) lor src.words.(i) in
    if merged <> dst.words.(i) then begin
      dst.words.(i) <- merged;
      changed := true
    end
  done;
  !changed

let subset a b =
  if a.n <> b.n then invalid_arg "Bitset.subset: capacity mismatch";
  let ok = ref true in
  for i = 0 to Array.length a.words - 1 do
    if a.words.(i) land lnot b.words.(i) <> 0 then ok := false
  done;
  !ok

let inter_nonempty a b =
  if a.n <> b.n then invalid_arg "Bitset.inter_nonempty: capacity mismatch";
  let hit = ref false in
  for i = 0 to Array.length a.words - 1 do
    if a.words.(i) land b.words.(i) <> 0 then hit := true
  done;
  !hit

let iter t f =
  for i = 0 to t.n - 1 do
    if t.words.(i / bits) land (1 lsl (i mod bits)) <> 0 then f i
  done

let clear t = Array.fill t.words 0 (Array.length t.words) 0
