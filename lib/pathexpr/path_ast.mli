(** Abstract syntax of regular path expressions (paper, Section 3):

    {v R ::= label | _ | R.R | R|R | (R) | R? | R* v}

    A path expression matches a data node [n] if the label path of some
    word of [L(R)] matches a node path ending in [n] — the path may
    start anywhere in the graph, which gives the partial-match ['//']
    semantics the paper expects of most queries. *)

type t =
  | Any  (** [_], matches any single label *)
  | Label of string
  | Seq of t * t
  | Alt of t * t
  | Opt of t
  | Star of t

val seq_of_labels : string list -> t
(** [seq_of_labels ["a"; "b"]] is [a.b].
    @raise Invalid_argument on the empty list. *)

val as_label_seq : t -> string list option
(** Inverse of {!seq_of_labels}: [Some labels] when the expression is a
    plain label sequence (the only query shape whose soundness the
    index can decide from its length). *)

val max_word_length : t -> int option
(** Length (in labels) of the longest word in [L(R)], or [None] when
    the language is unbounded (contains a productive [*]). *)

val min_word_length : t -> int

val labels : t -> string list
(** Distinct labels mentioned, in first-occurrence order. *)

val pp : Format.formatter -> t -> unit
(** Prints a concrete expression that {!Path_parser.parse} reads back. *)

val to_string : t -> string
val equal : t -> t -> bool

(** {1 Wire form}

    Compact prefix encoding used by the dkserve protocol: one tag byte
    per constructor, labels length-prefixed (16-bit big-endian). *)

val encode : Buffer.t -> t -> unit
(** Append the wire form of an expression.
    @raise Invalid_argument on a label longer than 65535 bytes. *)

val decode : string -> pos:int -> (t * int, string) result
(** [decode s ~pos] reads one expression starting at [pos] and returns
    it with the position one past its encoding.  Total on arbitrary
    bytes: malformed, truncated or oversized input (more than 65536
    nodes, deeper than 4096) yields [Error] — never an exception,
    a crash, or unbounded work. *)
