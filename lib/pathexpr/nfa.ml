module Label = Dkindex_graph.Label

type sym =
  | Any_sym
  | Sym of int  (** label code; [-1] never matches *)

type t = {
  n_states : int;
  start : int;
  accept : int;
  delta : (sym * int) list array;
  eps : int list array;
  accepting_states : Bitset.t;
      (* states whose epsilon closure contains [accept] *)
}

let n_states t = t.n_states

(* Thompson construction with one start and one accept state per
   fragment, connected with epsilon edges. *)
let compile pool expr =
  let delta = ref [] and eps = ref [] and count = ref 0 in
  let fresh () =
    let id = !count in
    incr count;
    id
  in
  let add_eps u v = eps := (u, v) :: !eps in
  let add_sym u sym v = delta := (u, (sym, v)) :: !delta in
  let sym_of_label name =
    match Label.Pool.find_opt pool name with
    | Some l -> Sym (Label.to_int l)
    | None -> Sym (-1)
  in
  let rec build = function
    | Path_ast.Any ->
      let s = fresh () and e = fresh () in
      add_sym s Any_sym e;
      (s, e)
    | Path_ast.Label name ->
      let s = fresh () and e = fresh () in
      add_sym s (sym_of_label name) e;
      (s, e)
    | Path_ast.Seq (a, b) ->
      let sa, ea = build a in
      let sb, eb = build b in
      add_eps ea sb;
      (sa, eb)
    | Path_ast.Alt (a, b) ->
      let s = fresh () and e = fresh () in
      let sa, ea = build a in
      let sb, eb = build b in
      add_eps s sa;
      add_eps s sb;
      add_eps ea e;
      add_eps eb e;
      (s, e)
    | Path_ast.Opt a ->
      let s = fresh () and e = fresh () in
      let sa, ea = build a in
      add_eps s sa;
      add_eps ea e;
      add_eps s e;
      (s, e)
    | Path_ast.Star a ->
      let s = fresh () and e = fresh () in
      let sa, ea = build a in
      add_eps s sa;
      add_eps ea e;
      add_eps s e;
      add_eps e s;
      (s, e)
  in
  let start, accept = build expr in
  let n = !count in
  let delta_arr = Array.make n [] and eps_arr = Array.make n [] in
  List.iter (fun (u, edge) -> delta_arr.(u) <- edge :: delta_arr.(u)) !delta;
  List.iter (fun (u, v) -> eps_arr.(u) <- v :: eps_arr.(u)) !eps;
  (* Accepting states: backward epsilon reachability from [accept]. *)
  let rev_eps = Array.make n [] in
  List.iter (fun (u, v) -> rev_eps.(v) <- u :: rev_eps.(v)) !eps;
  let accepting_states = Bitset.create n in
  Bitset.add accepting_states accept;
  let stack = ref [ accept ] in
  let rec close () =
    match !stack with
    | [] -> ()
    | q :: rest ->
      stack := rest;
      List.iter
        (fun p ->
          if not (Bitset.mem accepting_states p) then begin
            Bitset.add accepting_states p;
            stack := p :: !stack
          end)
        rev_eps.(q);
      close ()
  in
  close ();
  { n_states = n; start; accept; delta = delta_arr; eps = eps_arr; accepting_states }

let eclose t set =
  let stack = ref [] in
  Bitset.iter set (fun q -> stack := q :: !stack);
  let rec loop () =
    match !stack with
    | [] -> ()
    | q :: rest ->
      stack := rest;
      List.iter
        (fun q' ->
          if not (Bitset.mem set q') then begin
            Bitset.add set q';
            stack := q' :: !stack
          end)
        t.eps.(q);
      loop ()
  in
  loop ()

let initial t =
  let set = Bitset.create t.n_states in
  Bitset.add set t.start;
  eclose t set;
  set

let step t states l =
  let code = Label.to_int l in
  let next = Bitset.create t.n_states in
  Bitset.iter states (fun q ->
      List.iter
        (fun (sym, q') ->
          match sym with
          | Any_sym -> Bitset.add next q'
          | Sym c -> if c = code then Bitset.add next q')
        t.delta.(q));
  eclose t next;
  next

let accepting t states = Bitset.mem states t.accept

let is_accepting_state t q = Bitset.mem t.accepting_states q

(* Dense (state, label code) -> successor-set table.  Evaluators that
   repeatedly step singleton state sets (one per live NFA state per
   index edge) precompute this once and replace each [step] call — a
   fresh Bitset plus delta-list walk plus epsilon closure — with an
   array read of a shared, already-closed set. *)
type table = Bitset.t array array  (* state -> label code -> eclosed successors *)

let transition_table t ~n_labels =
  Array.init t.n_states (fun q ->
      let rows = Array.init n_labels (fun _ -> Bitset.create t.n_states) in
      List.iter
        (fun (sym, q') ->
          match sym with
          | Any_sym -> Array.iter (fun row -> Bitset.add row q') rows
          | Sym c -> if c >= 0 && c < n_labels then Bitset.add rows.(c) q')
        t.delta.(q);
      Array.iter (fun row -> eclose t row) rows;
      rows)

let table_step (table : table) q code = table.(q).(code)

let accepts_word t word =
  let states = List.fold_left (fun states l -> step t states l) (initial t) word in
  accepting t states
