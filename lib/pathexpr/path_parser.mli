(** Parser for the concrete syntax of regular path expressions.

    Grammar (tightest binding last):
    {v
    expr    ::= seq ('|' seq)*
    seq     ::= postfix ('.' postfix)*
    postfix ::= atom ('*' | '?')*
    atom    ::= '_' | name | '(' expr ')'
    v}
    Names follow XML name syntax.  Whitespace is allowed anywhere
    between tokens. *)

exception Parse_error of { pos : int; msg : string }

val parse : string -> Path_ast.t
(** @raise Parse_error on malformed input. *)

val parse_opt : string -> Path_ast.t option
