(** Fixed-capacity mutable bit sets, used for NFA state sets. *)

type t

val create : int -> t
(** [create n] is the empty set over universe [0 .. n-1]. *)

val capacity : t -> int
val copy : t -> t
val add : t -> int -> unit
val mem : t -> int -> bool
val is_empty : t -> bool
val equal : t -> t -> bool
val cardinal : t -> int

val union_into : dst:t -> t -> bool
(** [union_into ~dst src] adds [src] to [dst]; returns [true] when
    [dst] changed. *)

val subset : t -> t -> bool
(** [subset a b] is true when every member of [a] is in [b]. *)

val inter_nonempty : t -> t -> bool
val iter : t -> (int -> unit) -> unit
val clear : t -> unit
