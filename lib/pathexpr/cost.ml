type t = { mutable index_visits : int; mutable data_visits : int }

let create () = { index_visits = 0; data_visits = 0 }
let total t = t.index_visits + t.data_visits
let visit_index t = t.index_visits <- t.index_visits + 1
let visit_data t = t.data_visits <- t.data_visits + 1

let add acc c =
  acc.index_visits <- acc.index_visits + c.index_visits;
  acc.data_visits <- acc.data_visits + c.data_visits

let pp ppf t =
  Format.fprintf ppf "index=%d data=%d total=%d" t.index_visits t.data_visits (total t)
