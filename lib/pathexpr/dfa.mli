(** Deterministic automata for path expressions, by subset construction
    over the Thompson NFA.

    Where the NFA carries a state {e set} per visited graph node, the
    DFA carries a single integer, which makes repeated evaluation of
    the same expression over large graphs noticeably cheaper (see the
    micro-benchmarks).  Subset construction can explode for pathological
    expressions, so {!compile} takes a state cap. *)

type t

exception Too_large of int

val compile :
  ?max_states:int -> Dkindex_graph.Label.Pool.t -> Path_ast.t -> t
(** Default [max_states] is 4096.  @raise Too_large beyond the cap. *)

val of_nfa : ?max_states:int -> n_labels:int -> Nfa.t -> t

val n_states : t -> int

val start : t -> int

val step : t -> int -> Dkindex_graph.Label.t -> int
(** [-1] is the dead state (also accepted as input, staying dead). *)

val accepting : t -> int -> bool
(** [accepting t (-1)] is [false]. *)

val accepts_word : t -> Dkindex_graph.Label.t list -> bool
