type axis = Child | Descendant

type node = { label : string option; value_test : string option; preds : (axis * node) list }
type t = { steps : (axis * node) list }

exception Parse_error of { pos : int; msg : string }

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

type state = { src : string; mutable pos : int }

let error st fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error { pos = st.pos; msg })) fmt

let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.equal (String.sub st.src st.pos n) s

let eat st s =
  if looking_at st s then begin
    st.pos <- st.pos + String.length s;
    true
  end
  else false

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || Char.equal c '_' || Char.equal c ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9') || Char.equal c '-'

let parse_name st =
  if eat st "*" then None
  else if is_name_start (peek st) then begin
    let start = st.pos in
    while (not (eof st)) && is_name_char (peek st) do
      st.pos <- st.pos + 1
    done;
    Some (String.sub st.src start (st.pos - start))
  end
  else error st "expected a name or '*'"

let parse_axis st =
  if eat st "//" then Some Descendant else if eat st "/" then Some Child else None

(* Fold a chain of steps into a single predicate node: a/b//c becomes
   a[with pred b[with pred //c]] since predicates are existential. *)
let rec chain_to_node = function
  | [] -> invalid_arg "Tree_pattern.chain_to_node"
  | [ (axis, node) ] -> (axis, node)
  | (axis, node) :: rest ->
    let sub = chain_to_node rest in
    (axis, { node with preds = node.preds @ [ sub ] })

let parse_quoted st =
  if not (eat st "\"") then error st "expected '\"'";
  let buf = Buffer.create 16 in
  let rec go () =
    if eat st "\"" then ()
    else if st.pos < String.length st.src then begin
      Buffer.add_char buf st.src.[st.pos];
      st.pos <- st.pos + 1;
      go ()
    end
    else error st "unterminated string"
  in
  go ();
  Buffer.contents buf

let rec parse_step st =
  let label = parse_name st in
  let preds = ref [] in
  let value_test = ref None in
  while eat st "[" do
    if looking_at st ".=" || looking_at st ". =" then begin
      ignore (eat st ".");
      while eat st " " do () done;
      if not (eat st "=") then error st "expected '='";
      while eat st " " do () done;
      value_test := Some (parse_quoted st);
      if not (eat st "]") then error st "expected ']'"
    end
    else begin
      let first_axis =
        if eat st ".//" then Descendant
        else begin
          ignore (eat st "./");
          Child
        end
      in
      let chain = parse_chain st first_axis in
      if not (eat st "]") then error st "expected ']'";
      preds := chain_to_node chain :: !preds
    end
  done;
  { label; value_test = !value_test; preds = List.rev !preds }

and parse_chain st first_axis =
  let first = parse_step st in
  let rec more acc =
    match parse_axis st with
    | Some axis -> more ((axis, parse_step st) :: acc)
    | None -> List.rev acc
  in
  more [ (first_axis, first) ]

let parse src =
  let st = { src; pos = 0 } in
  let axis0 =
    match parse_axis st with
    | Some a -> a
    | None -> error st "pattern must start with '/' or '//'"
  in
  let steps = parse_chain st axis0 in
  if not (eof st) then error st "trailing input";
  { steps }

(* ------------------------------------------------------------------ *)
(* Printer                                                             *)

let axis_str = function Child -> "/" | Descendant -> "//"

let rec pp_node ppf n =
  Format.pp_print_string ppf (Option.value n.label ~default:"*");
  (match n.value_test with
  | Some s -> Format.fprintf ppf "[.=%S]" s
  | None -> ());
  List.iter
    (fun (axis, sub) ->
      match axis with
      | Child -> Format.fprintf ppf "[./%a]" pp_node sub
      | Descendant -> Format.fprintf ppf "[.//%a]" pp_node sub)
    n.preds

let pp ppf t =
  List.iter (fun (axis, n) -> Format.fprintf ppf "%s%a" (axis_str axis) pp_node n) t.steps

let to_string t = Format.asprintf "%a" pp t

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)

type view = {
  root : int;
  label_name : int -> string;
  children : int -> int list;
  check_value : int -> string -> bool;
  visit : int -> unit;
}

let has_value_test t =
  let rec node_has n =
    Option.is_some n.value_test || List.exists (fun (_, sub) -> node_has sub) n.preds
  in
  List.exists (fun (_, n) -> node_has n) t.steps

let data_view g ~cost =
  let module G = Dkindex_graph.Data_graph in
  let check_value u expected =
    let matches w = match G.value g w with Some s -> String.equal s expected | None -> false in
    matches u
    || List.exists
         (fun c ->
           String.equal (G.label_name g c) Dkindex_graph.Label.value_name && matches c)
         (G.children g u)
  in
  {
    root = G.root g;
    label_name = G.label_name g;
    children = G.children g;
    check_value;
    visit = (fun _ -> Cost.visit_data cost);
  }

let descendants view u =
  let seen = Hashtbl.create 16 in
  let rec go w =
    List.iter
      (fun c ->
        if not (Hashtbl.mem seen c) then begin
          Hashtbl.add seen c ();
          view.visit c;
          go c
        end)
      (view.children w)
  in
  go u;
  Hashtbl.fold (fun c () acc -> c :: acc) seen []

let axis_set view axis u =
  match axis with
  | Child ->
    let cs = view.children u in
    List.iter view.visit cs;
    cs
  | Descendant -> descendants view u

(* Pattern nodes are numbered (by physical identity; patterns are tiny)
   for memoization. *)
let number_nodes t =
  let acc = ref [] in
  let rec go n =
    acc := n :: !acc;
    List.iter (fun (_, sub) -> go sub) n.preds
  in
  List.iter (fun (_, n) -> go n) t.steps;
  List.rev !acc

let make_sat view numbering =
  let memo : (int * int, bool) Hashtbl.t = Hashtbl.create 256 in
  let id_of n =
    let rec idx i = function
      | [] -> invalid_arg "Tree_pattern: foreign pattern node"
      | x :: rest -> if x == n then i else idx (i + 1) rest
    in
    idx 0 numbering
  in
  let rec sat u (n : node) =
    let key = (u, id_of n) in
    match Hashtbl.find_opt memo key with
    | Some r -> r
    | None ->
      let label_ok =
        match n.label with None -> true | Some l -> String.equal l (view.label_name u)
      in
      let value_ok =
        match n.value_test with None -> true | Some s -> view.check_value u s
      in
      let r =
        label_ok && value_ok
        && List.for_all
             (fun (axis, sub) -> List.exists (fun w -> sat w sub) (axis_set view axis u))
             n.preds
      in
      Hashtbl.add memo key r;
      r
  in
  sat

let eval view t =
  let numbering = number_nodes t in
  let sat = make_sat view numbering in
  let step frontier (axis, n) =
    let next = Hashtbl.create 32 in
    List.iter
      (fun u ->
        List.iter
          (fun w -> if (not (Hashtbl.mem next w)) && sat w n then Hashtbl.add next w ())
          (axis_set view axis u))
      frontier;
    Hashtbl.fold (fun w () acc -> w :: acc) next []
  in
  let result = List.fold_left step [ view.root ] t.steps in
  List.sort Int.compare result

let matches_at view n u =
  let fake = { steps = [ (Child, n) ] } in
  let sat = make_sat view (number_nodes fake) in
  sat u n
