open Dkindex_graph
module Int_states = Set.Make (Int)

let eval_nfa g nfa ~cost =
  let n = Data_graph.n_nodes g in
  let states : Bitset.t option array = Array.make n None in
  let queue = Queue.create () in
  let enqueue u set =
    match states.(u) with
    | None ->
      states.(u) <- Some set;
      Queue.add u queue
    | Some existing -> if Bitset.union_into ~dst:existing set then Queue.add u queue
  in
  let init = Nfa.initial nfa in
  Data_graph.iter_nodes g (fun u ->
      let s = Nfa.step nfa init (Data_graph.label g u) in
      if not (Bitset.is_empty s) then enqueue u s);
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Cost.visit_data cost;
    match states.(u) with
    | None -> ()
    | Some su ->
      Data_graph.iter_children g u (fun c ->
          let t = Nfa.step nfa su (Data_graph.label g c) in
          if not (Bitset.is_empty t) then enqueue c t)
  done;
  let result = ref [] in
  for u = n - 1 downto 0 do
    match states.(u) with
    | Some s when Nfa.accepting nfa s -> result := u :: !result
    | Some _ | None -> ()
  done;
  !result

(* Scratch for [eval_label_path], reused across calls so a query that
   touches a handful of nodes does not pay three O(n) array allocations.
   Domain-local, so concurrent evaluation from worker domains (the batch
   driver) cannot race.  The stamp array is never cleared: each call
   claims a fresh band of stamp values above [gen], so stale entries
   from earlier calls (all <= gen) can never collide. *)
type scratch = {
  mutable stamp : int array;
  mutable cur : int array;
  mutable nxt : int array;
  mutable gen : int;
}

let scratch_key =
  Domain.DLS.new_key (fun () -> { stamp = [||]; cur = [||]; nxt = [||]; gen = 0 })

let get_scratch n =
  let s = Domain.DLS.get scratch_key in
  if Array.length s.stamp < n then begin
    s.stamp <- Array.make n 0;
    s.cur <- Array.make n 0;
    s.nxt <- Array.make n 0;
    s.gen <- 0
  end;
  s

let eval_label_path g path ~cost =
  let m = Array.length path in
  if m = 0 then []
  else begin
    let start = Data_graph.nodes_with_label g path.(0) in
    List.iter (fun _ -> Cost.visit_data cost) start;
    if m = 1 then start (* sorted and duplicate-free already *)
    else begin
      (* Flat int-array frontiers with stamp-array dedup: stamp.(c) =
         base + i marks c as already in level i's frontier, so no
         hashing and no per-level table allocation. *)
      let n = Data_graph.n_nodes g in
      let s = get_scratch n in
      let stamp = s.stamp in
      let base = s.gen in
      s.gen <- base + m;
      let cur = ref s.cur and next = ref s.nxt in
      let cur_len = ref 0 in
      List.iter
        (fun u ->
          !cur.(!cur_len) <- u;
          incr cur_len)
        start;
      for i = 1 to m - 1 do
        let w = ref 0 in
        let nxt = !next in
        for j = 0 to !cur_len - 1 do
          Data_graph.iter_children g !cur.(j) (fun c ->
              if stamp.(c) <> base + i && Label.equal (Data_graph.label g c) path.(i) then begin
                stamp.(c) <- base + i;
                nxt.(!w) <- c;
                incr w;
                Cost.visit_data cost
              end)
        done;
        let tmp = !cur in
        cur := !next;
        next := tmp;
        cur_len := !w
      done;
      Int_arr.sort_range !cur ~lo:0 ~hi:!cur_len;
      let result = ref [] in
      for j = !cur_len - 1 downto 0 do
        result := !cur.(j) :: !result
      done;
      !result
    end
  end

let make_path_validator ?memo g path ~cost =
  let m = Array.length path in
  let memo : (int * int, bool) Hashtbl.t =
    match memo with Some h -> h | None -> Hashtbl.create 256
  in
  (* [matches u pos]: does path.(0 .. pos) match some node path ending
     at u?  pos strictly decreases along recursion, so no cycles. *)
  let rec matches u pos =
    if not (Label.equal (Data_graph.label g u) path.(pos)) then false
    else if pos = 0 then true
    else
      match Hashtbl.find_opt memo (u, pos) with
      | Some r -> r
      | None ->
        Cost.visit_data cost;
        let r = Data_graph.exists_parents g u (fun p -> matches p (pos - 1)) in
        Hashtbl.add memo (u, pos) r;
        r
  in
  fun u -> m > 0 && matches u (m - 1)

let node_matches_nfa g nfa ~node ~cost =
  (* Restrict the product fixpoint to the node's ancestor closure: only
     paths through ancestors can end at [node]. *)
  let in_closure = Hashtbl.create 64 in
  let rec collect u =
    if not (Hashtbl.mem in_closure u) then begin
      Hashtbl.add in_closure u ();
      Cost.visit_data cost;
      Data_graph.iter_parents g u collect
    end
  in
  collect node;
  let states : (int, Bitset.t) Hashtbl.t = Hashtbl.create 64 in
  let queue = Queue.create () in
  let enqueue u set =
    match Hashtbl.find_opt states u with
    | None ->
      Hashtbl.add states u set;
      Queue.add u queue
    | Some existing -> if Bitset.union_into ~dst:existing set then Queue.add u queue
  in
  let init = Nfa.initial nfa in
  Hashtbl.iter
    (fun u () ->
      let s = Nfa.step nfa init (Data_graph.label g u) in
      if not (Bitset.is_empty s) then enqueue u s)
    in_closure;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Cost.visit_data cost;
    match Hashtbl.find_opt states u with
    | None -> ()
    | Some su ->
      Data_graph.iter_children g u (fun c ->
          if Hashtbl.mem in_closure c then begin
            let t = Nfa.step nfa su (Data_graph.label g c) in
            if not (Bitset.is_empty t) then enqueue c t
          end)
  done;
  match Hashtbl.find_opt states node with
  | Some s -> Nfa.accepting nfa s
  | None -> false

let eval_dfa g dfa ~cost =
  (* Product reachability over (node, DFA state).  Because matching can
     start anywhere, each node may carry several live DFA states. *)
  let states : (int, Int_states.t) Hashtbl.t = Hashtbl.create 256 in
  let queue = Queue.create () in
  let enqueue u s =
    let current = Option.value (Hashtbl.find_opt states u) ~default:Int_states.empty in
    if not (Int_states.mem s current) then begin
      Hashtbl.replace states u (Int_states.add s current);
      Queue.add (u, s) queue
    end
  in
  Data_graph.iter_nodes g (fun u ->
      let s = Dfa.step dfa (Dfa.start dfa) (Data_graph.label g u) in
      if s >= 0 then enqueue u s);
  while not (Queue.is_empty queue) do
    let u, s = Queue.pop queue in
    Cost.visit_data cost;
    Data_graph.iter_children g u (fun c ->
        let s' = Dfa.step dfa s (Data_graph.label g c) in
        if s' >= 0 then enqueue c s')
  done;
  let result = ref [] in
  Hashtbl.iter
    (fun u live -> if Int_states.exists (Dfa.accepting dfa) live then result := u :: !result)
    states;
  List.sort Int.compare !result
