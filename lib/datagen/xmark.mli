(** XMark-like synthetic dataset (substitution for the XMark benchmark
    generator used in the paper's Section 6).

    Generates the XMark auction-site document: a regular, shallow
    element hierarchy (site / regions / items / categories / people /
    open and closed auctions) with the benchmark's ID/IDREF reference
    topology (items reference categories, auctions reference items and
    persons, persons watch auctions, the category graph links
    categories).  See DESIGN.md, "Substitutions".

    [scale] is the number of items; the other populations are derived
    with XMark-like ratios (persons = scale, open auctions = 3/4 scale,
    closed auctions = 1/2 scale, categories = scale / 10).  A scale of
    100 yields a graph of roughly 10k nodes. *)

val doc : ?seed:int -> scale:int -> unit -> Dkindex_xml.Xml_ast.doc

val events : ?seed:int -> scale:int -> (Dkindex_xml.Xml_sax.event -> unit) -> unit
(** The generator's primitive: emit the document as SAX events in
    document order.  [doc] is exactly these events collected into a
    tree, so both APIs always agree for a given seed and scale.  Peak
    memory is one top-level chunk (an item, a person, an auction), not
    the document. *)

val stream :
  ?seed:int ->
  ?mem_budget:int ->
  ?tmp_dir:string ->
  scale:int ->
  path:string ->
  unit ->
  int * string list
(** Generate straight into a {!Dkindex_graph.Container} file at [path]
    without materializing the document or the graph (events through
    {!Dkindex_xml.Xml_to_graph.stream_to_container}).  Returns
    [(n_reference_edges, unresolved_refs)].  The file is byte-identical
    to [Container.save_graph] of [graph] with the same seed and
    scale. *)

val config : Dkindex_xml.Xml_to_graph.config
(** ID/IDREF attribute mapping for XMark documents. *)

val graph : ?seed:int -> scale:int -> unit -> Dkindex_graph.Data_graph.t
(** [graph ~scale] = generate the document and load it with {!config}. *)

val ref_pairs : (string * string) list
(** The (source label, target label) ID/IDREF pairs of the schema, used
    by the update experiments: "we randomly choose a pair of ID/IDREF
    labels in the DTD file and one data node from each label group"
    (paper, Section 6.2). *)
