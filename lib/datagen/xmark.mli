(** XMark-like synthetic dataset (substitution for the XMark benchmark
    generator used in the paper's Section 6).

    Generates the XMark auction-site document: a regular, shallow
    element hierarchy (site / regions / items / categories / people /
    open and closed auctions) with the benchmark's ID/IDREF reference
    topology (items reference categories, auctions reference items and
    persons, persons watch auctions, the category graph links
    categories).  See DESIGN.md, "Substitutions".

    [scale] is the number of items; the other populations are derived
    with XMark-like ratios (persons = scale, open auctions = 3/4 scale,
    closed auctions = 1/2 scale, categories = scale / 10).  A scale of
    100 yields a graph of roughly 10k nodes. *)

val doc : ?seed:int -> scale:int -> unit -> Dkindex_xml.Xml_ast.doc

val config : Dkindex_xml.Xml_to_graph.config
(** ID/IDREF attribute mapping for XMark documents. *)

val graph : ?seed:int -> scale:int -> unit -> Dkindex_graph.Data_graph.t
(** [graph ~scale] = generate the document and load it with {!config}. *)

val ref_pairs : (string * string) list
(** The (source label, target label) ID/IDREF pairs of the schema, used
    by the update experiments: "we randomly choose a pair of ID/IDREF
    labels in the DTD file and one data node from each label group"
    (paper, Section 6.2). *)
