open Dkindex_xml

let config =
  { Xml_to_graph.id_attrs = [ "id" ]; idref_attrs = [ "coindex"; "antecedent" ] }

let ref_pairs = [ ("trace", "NP"); ("trace", "WHNP") ]

let words =
  [| "the"; "a"; "market"; "shares"; "trading"; "company"; "investors"; "report";
     "yesterday"; "prices"; "new"; "old"; "rose"; "fell"; "said"; "bought" |]

let el = Xml_ast.element
let txt s = [ Xml_ast.text s ]

type ctx = {
  rng : Prng.t;
  mutable np_count : int;  (* NP/WHNP ids issued, targets for traces *)
  mutable pending_np : string list;  (* ids available for coindexing *)
}

let leaf ctx tag =
  el tag (txt (Prng.choose ctx.rng words))

(* A small probabilistic grammar over Treebank tags.  [depth] bounds
   recursion; productions get flatter as it runs out. *)
let rec sentence ctx ~depth = el "S" (np ctx ~depth:(depth - 1) :: vp ctx ~depth:(depth - 1))

and np ctx ~depth =
  let fresh_id () =
    let id = Printf.sprintf "np%d" ctx.np_count in
    ctx.np_count <- ctx.np_count + 1;
    ctx.pending_np <- id :: ctx.pending_np;
    id
  in
  let attrs = if Prng.bool ctx.rng 0.3 then [ ("id", fresh_id ()) ] else [] in
  let base = [ Xml_ast.Element (leaf ctx "DT"); Xml_ast.Element (leaf ctx "NN") ] in
  let adj = if Prng.bool ctx.rng 0.4 then [ Xml_ast.Element (leaf ctx "JJ") ] else [] in
  let post =
    if depth > 0 && Prng.bool ctx.rng 0.35 then [ Xml_ast.Element (pp ctx ~depth:(depth - 1)) ]
    else if depth > 0 && Prng.bool ctx.rng 0.25 then [ Xml_ast.Element (sbar ctx ~depth:(depth - 1)) ]
    else []
  in
  Xml_ast.Element (el ~attrs "NP" (adj @ base @ post))

and vp ctx ~depth =
  let verb = Xml_ast.Element (leaf ctx "VB") in
  let obj =
    if depth > 0 && Prng.bool ctx.rng 0.7 then [ np ctx ~depth:(depth - 1) ] else []
  in
  let trace =
    if ctx.pending_np <> [] && Prng.bool ctx.rng 0.35 then
      [
        Xml_ast.Element
          (el ~attrs:[ ("coindex", Prng.choose_list ctx.rng ctx.pending_np) ] "trace" []);
      ]
    else []
  in
  let adjunct =
    if depth > 0 && Prng.bool ctx.rng 0.3 then [ Xml_ast.Element (pp ctx ~depth:(depth - 1)) ]
    else []
  in
  let nested =
    if depth > 0 && Prng.bool ctx.rng 0.3 then
      [ Xml_ast.Element (el "VP" [ Xml_ast.Element (leaf ctx "VB"); Xml_ast.Element (sbar ctx ~depth:(depth - 1)) ]) ]
    else []
  in
  [ verb ] @ obj @ trace @ adjunct @ nested

and pp ctx ~depth =
  el "PP" [ Xml_ast.Element (leaf ctx "IN"); np ctx ~depth:(max 0 (depth - 1)) ]

and sbar ctx ~depth =
  let whnp =
    if Prng.bool ctx.rng 0.4 then begin
      let id = Printf.sprintf "np%d" ctx.np_count in
      ctx.np_count <- ctx.np_count + 1;
      ctx.pending_np <- id :: ctx.pending_np;
      [ Xml_ast.Element (el ~attrs:[ ("id", id) ] "WHNP" [ Xml_ast.Element (leaf ctx "WP") ]) ]
    end
    else []
  in
  el "SBAR" (whnp @ [ Xml_ast.Element (sentence ctx ~depth) ])

let doc ?(seed = 47) ~scale () =
  let ctx = { rng = Prng.create ~seed; np_count = 0; pending_np = [] } in
  let sentences =
    List.init (max 1 scale) (fun _ ->
        (* reset coindexation scope per sentence, as in the corpus *)
        ctx.pending_np <- [];
        Xml_ast.Element (sentence ctx ~depth:(10 + Prng.int ctx.rng 6)))
  in
  { Xml_ast.root = el "treebank" sentences }

let graph ?seed ~scale () = Xml_to_graph.graph_of_doc ~config (doc ?seed ~scale ())
