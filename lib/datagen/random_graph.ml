module B = Dkindex_graph.Builder
module GS = Dkindex_graph.Graph_stream

let label_name i = Printf.sprintf "l%d" i

(* One generation body drives both the in-RAM builder and the
   streaming container writer; the sink record pins the PRNG draw
   sequence and the node-id allocation order to be identical, so the
   streamed container is byte-identical to saving [graph]. *)
type sink = {
  snk_add_node : string -> int;
  snk_add_edge : int -> int -> unit;
  snk_set_value : int -> string -> unit;
}

let skeleton rng snk ~nodes ~n_labels =
  for _ = 1 to nodes - 1 do
    let id = snk.snk_add_node (label_name (Prng.int rng n_labels)) in
    let parent = Prng.int rng id in
    snk.snk_add_edge parent id
  done

let generate rng snk ~nodes ~n_labels ~extra_edges ~value_fraction =
  skeleton rng snk ~nodes ~n_labels;
  for _ = 1 to extra_edges do
    let u = Prng.int rng nodes and v = Prng.int rng nodes in
    if v <> 0 then snk.snk_add_edge u v
  done;
  if value_fraction > 0.0 then
    for u = 1 to nodes - 1 do
      if Prng.bool rng value_fraction then
        snk.snk_set_value u (Printf.sprintf "v%d" (Prng.int rng 4))
    done

let builder_sink b =
  {
    snk_add_node = B.add_node b;
    snk_add_edge = B.add_edge b;
    snk_set_value = B.set_value b;
  }

let graph ?(seed = 7) ?(value_fraction = 0.0) ~nodes ~n_labels ~extra_edges () =
  if nodes < 1 then invalid_arg "Random_graph.graph: need at least the root";
  let rng = Prng.create ~seed in
  let b = B.create () in
  generate rng (builder_sink b) ~nodes ~n_labels ~extra_edges ~value_fraction;
  B.build b

let stream ?(seed = 7) ?(value_fraction = 0.0) ?mem_budget ?tmp_dir ~nodes ~n_labels
    ~extra_edges ~path () =
  if nodes < 1 then invalid_arg "Random_graph.stream: need at least the root";
  let rng = Prng.create ~seed in
  let gs = GS.create ?mem_budget ?tmp_dir ~path () in
  match
    let snk =
      {
        snk_add_node = GS.add_node gs;
        snk_add_edge = GS.add_edge gs;
        snk_set_value = GS.set_value gs;
      }
    in
    generate rng snk ~nodes ~n_labels ~extra_edges ~value_fraction
  with
  | () -> GS.finish gs
  | exception e ->
    GS.abort gs;
    raise e

let tree ?(seed = 7) ~nodes ~n_labels () =
  if nodes < 1 then invalid_arg "Random_graph.tree: need at least the root";
  let rng = Prng.create ~seed in
  let b = B.create () in
  skeleton rng (builder_sink b) ~nodes ~n_labels;
  B.build b
