module B = Dkindex_graph.Builder

let label_name i = Printf.sprintf "l%d" i

let skeleton rng b ~nodes ~n_labels =
  for _ = 1 to nodes - 1 do
    let id = B.add_node b (label_name (Prng.int rng n_labels)) in
    let parent = Prng.int rng id in
    B.add_edge b parent id
  done

let graph ?(seed = 7) ?(value_fraction = 0.0) ~nodes ~n_labels ~extra_edges () =
  if nodes < 1 then invalid_arg "Random_graph.graph: need at least the root";
  let rng = Prng.create ~seed in
  let b = B.create () in
  skeleton rng b ~nodes ~n_labels;
  for _ = 1 to extra_edges do
    let u = Prng.int rng nodes and v = Prng.int rng nodes in
    if v <> 0 then B.add_edge b u v
  done;
  if value_fraction > 0.0 then
    for u = 1 to nodes - 1 do
      if Prng.bool rng value_fraction then
        B.set_value b u (Printf.sprintf "v%d" (Prng.int rng 4))
    done;
  B.build b

let tree ?(seed = 7) ~nodes ~n_labels () =
  if nodes < 1 then invalid_arg "Random_graph.tree: need at least the root";
  let rng = Prng.create ~seed in
  let b = B.create () in
  skeleton rng b ~nodes ~n_labels;
  B.build b
