(** NASA-like synthetic dataset (substitution for the IBM generator +
    nasa.dtd file used in the paper's Section 6).

    The paper picked the NASA astronomical-metadata DTD because it is
    "broader, deeper and less regular" than XMark "with more
    references", and kept 8 of its 20 reference kinds.  This generator
    follows the published nasa.dtd element hierarchy (dataset / altname
    / reference / source (journal | book | other) / history / revision
    / tableHead / fields / definitions ...), is roughly twice as deep
    as XMark thanks to recursive [para] / [footnote] content, draws
    every optional element independently, and wires exactly 8 reference
    kinds:

    + [dataset\@related] -> dataset
    + [keyword\@definition] -> definition
    + [field\@definition] -> definition
    + [tableLink\@field] -> field
    + [revision\@reference] -> reference
    + [footnote\@dataset] -> dataset
    + [para\@field] -> field
    + [source\@journal] -> journal

    [scale] is the number of datasets; a scale of 100 yields roughly
    15k nodes. *)

val doc : ?seed:int -> scale:int -> unit -> Dkindex_xml.Xml_ast.doc
val config : Dkindex_xml.Xml_to_graph.config
val graph : ?seed:int -> scale:int -> unit -> Dkindex_graph.Data_graph.t

val events : ?seed:int -> scale:int -> (Dkindex_xml.Xml_sax.event -> unit) -> unit
(** Emit the document as SAX events ([doc] is these events collected);
    peak memory is one dataset subtree.  See {!Xmark.events}. *)

val stream :
  ?seed:int ->
  ?mem_budget:int ->
  ?tmp_dir:string ->
  scale:int ->
  path:string ->
  unit ->
  int * string list
(** Generate straight into a {!Dkindex_graph.Container} file,
    byte-identical to saving [graph].  See {!Xmark.stream}. *)

val ref_pairs : (string * string) list
(** The 8 ID/IDREF label pairs of the synthetic NASA schema (paper,
    Section 6.2). *)
