(** NASA-like synthetic dataset (substitution for the IBM generator +
    nasa.dtd file used in the paper's Section 6).

    The paper picked the NASA astronomical-metadata DTD because it is
    "broader, deeper and less regular" than XMark "with more
    references", and kept 8 of its 20 reference kinds.  This generator
    follows the published nasa.dtd element hierarchy (dataset / altname
    / reference / source (journal | book | other) / history / revision
    / tableHead / fields / definitions ...), is roughly twice as deep
    as XMark thanks to recursive [para] / [footnote] content, draws
    every optional element independently, and wires exactly 8 reference
    kinds:

    + [dataset\@related] -> dataset
    + [keyword\@definition] -> definition
    + [field\@definition] -> definition
    + [tableLink\@field] -> field
    + [revision\@reference] -> reference
    + [footnote\@dataset] -> dataset
    + [para\@field] -> field
    + [source\@journal] -> journal

    [scale] is the number of datasets; a scale of 100 yields roughly
    15k nodes. *)

val doc : ?seed:int -> scale:int -> unit -> Dkindex_xml.Xml_ast.doc
val config : Dkindex_xml.Xml_to_graph.config
val graph : ?seed:int -> scale:int -> unit -> Dkindex_graph.Data_graph.t

val ref_pairs : (string * string) list
(** The 8 ID/IDREF label pairs of the synthetic NASA schema (paper,
    Section 6.2). *)
