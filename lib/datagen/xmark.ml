open Dkindex_xml

let config =
  {
    Xml_to_graph.id_attrs = [ "id" ];
    idref_attrs = [ "category"; "item"; "person"; "open_auction"; "from"; "to" ];
  }

(* Small vocabularies for text content; actual strings are irrelevant to
   the structural experiments but keep generated files realistic. *)
let words =
  [| "gold"; "vintage"; "rare"; "mint"; "boxed"; "signed"; "classic"; "large";
     "small"; "blue"; "red"; "antique"; "modern"; "heavy"; "light"; "fine" |]

let cities = [| "Singapore"; "Berlin"; "Austin"; "Lyon"; "Osaka"; "Quito" |]
let countries = [| "Singapore"; "Germany"; "USA"; "France"; "Japan"; "Ecuador" |]

let phrase rng n =
  String.concat " " (List.init n (fun _ -> Prng.choose rng words))

let el = Xml_ast.element
let txt s = [ Xml_ast.text s ]

let date rng =
  Printf.sprintf "%02d/%02d/%d" (Prng.range rng 1 12) (Prng.range rng 1 28)
    (Prng.range rng 1998 2003)

let money rng = Printf.sprintf "%d.%02d" (Prng.range rng 1 500) (Prng.range rng 0 99)

type population = {
  n_items : int;
  n_categories : int;
  n_persons : int;
  n_open : int;
  n_closed : int;
}

let population scale =
  {
    n_items = max 1 scale;
    n_categories = max 2 (scale / 10);
    n_persons = max 2 scale;
    n_open = max 1 (scale * 3 / 4);
    n_closed = max 1 (scale / 2);
  }

let category_id i = Printf.sprintf "category%d" i
let item_id i = Printf.sprintf "item%d" i
let person_id i = Printf.sprintf "person%d" i
let auction_id i = Printf.sprintf "open_auction%d" i

let gen_category rng i =
  el ~attrs:[ ("id", category_id i) ] "category"
    [
      Xml_ast.Element (el "name" (txt (phrase rng 2)));
      Xml_ast.Element (el "description" (txt (phrase rng 6)));
    ]

let gen_catgraph rng pop =
  let n_edges = max 1 (pop.n_categories / 2) in
  let edge _ =
    Xml_ast.Element
      (el
         ~attrs:
           [
             ("from", category_id (Prng.int rng pop.n_categories));
             ("to", category_id (Prng.int rng pop.n_categories));
           ]
         "edge" [])
  in
  el "catgraph" (List.init n_edges edge)

let gen_mail rng =
  Xml_ast.Element
    (el "mail"
       [
         Xml_ast.Element (el "from" (txt (phrase rng 1)));
         Xml_ast.Element (el "to" (txt (phrase rng 1)));
         Xml_ast.Element (el "date" (txt (date rng)));
         Xml_ast.Element (el "text" (txt (phrase rng 8)));
       ])

let gen_item rng pop i =
  let incategory _ =
    Xml_ast.Element
      (el ~attrs:[ ("category", category_id (Prng.int rng pop.n_categories)) ] "incategory" [])
  in
  let n_cats = Prng.range rng 1 3 in
  let mails = List.init (Prng.geometric rng ~p:0.6 ~max:3) (fun _ -> gen_mail rng) in
  el ~attrs:[ ("id", item_id i) ] "item"
    ([
       Xml_ast.Element (el "location" (txt (Prng.choose rng countries)));
       Xml_ast.Element (el "quantity" (txt (string_of_int (Prng.range rng 1 10))));
       Xml_ast.Element (el "name" (txt (phrase rng 2)));
       Xml_ast.Element (el "payment" (txt "Creditcard"));
       Xml_ast.Element (el "description" (txt (phrase rng 10)));
       Xml_ast.Element (el "shipping" (txt "Will ship internationally"));
     ]
    @ List.init n_cats incategory
    @ [ Xml_ast.Element (el "mailbox" mails) ])

let region_names = [| "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" |]

let gen_person rng pop i =
  let base =
    [
      Xml_ast.Element (el "name" (txt (phrase rng 2)));
      Xml_ast.Element (el "emailaddress" (txt (Printf.sprintf "mailto:p%d@example.com" i)));
    ]
  in
  let phone =
    if Prng.bool rng 0.5 then
      [ Xml_ast.Element (el "phone" (txt (Printf.sprintf "+65 %07d" (Prng.int rng 9999999)))) ]
    else []
  in
  let address =
    if Prng.bool rng 0.6 then
      [
        Xml_ast.Element
          (el "address"
             [
               Xml_ast.Element (el "street" (txt (phrase rng 2)));
               Xml_ast.Element (el "city" (txt (Prng.choose rng cities)));
               Xml_ast.Element (el "country" (txt (Prng.choose rng countries)));
               Xml_ast.Element (el "zipcode" (txt (string_of_int (Prng.range rng 10000 99999))));
             ]);
      ]
    else []
  in
  let homepage =
    if Prng.bool rng 0.3 then
      [ Xml_ast.Element (el "homepage" (txt (Printf.sprintf "http://example.com/~p%d" i))) ]
    else []
  in
  let creditcard =
    if Prng.bool rng 0.4 then
      [ Xml_ast.Element (el "creditcard" (txt (Printf.sprintf "%04d 1234 5678" (Prng.int rng 9999)))) ]
    else []
  in
  let profile =
    if Prng.bool rng 0.7 then
      let interest _ =
        Xml_ast.Element
          (el ~attrs:[ ("category", category_id (Prng.int rng pop.n_categories)) ] "interest" [])
      in
      let optional tag value p =
        if Prng.bool rng p then [ Xml_ast.Element (el tag (txt value)) ] else []
      in
      [
        Xml_ast.Element
          (el "profile"
             (List.init (Prng.geometric rng ~p:0.5 ~max:4) interest
             @ optional "education" "Graduate School" 0.4
             @ optional "gender" (if Prng.bool rng 0.5 then "male" else "female") 0.6
             @ [ Xml_ast.Element (el "business" (txt (if Prng.bool rng 0.3 then "Yes" else "No"))) ]
             @ optional "age" (string_of_int (Prng.range rng 18 80)) 0.5));
      ]
    else []
  in
  let watches =
    if pop.n_open > 0 && Prng.bool rng 0.4 then
      let watch _ =
        Xml_ast.Element
          (el ~attrs:[ ("open_auction", auction_id (Prng.int rng pop.n_open)) ] "watch" [])
      in
      [ Xml_ast.Element (el "watches" (List.init (Prng.range rng 1 3) watch)) ]
    else []
  in
  el ~attrs:[ ("id", person_id i) ] "person"
    (base @ phone @ address @ homepage @ creditcard @ profile @ watches)

let gen_annotation rng pop =
  el "annotation"
    ([
       Xml_ast.Element
         (el ~attrs:[ ("person", person_id (Prng.int rng pop.n_persons)) ] "author" []);
       Xml_ast.Element (el "description" (txt (phrase rng 6)));
     ]
    @
    if Prng.bool rng 0.5 then [ Xml_ast.Element (el "happiness" (txt (string_of_int (Prng.range rng 1 10)))) ]
    else [])

let gen_open_auction rng pop i =
  let bidder _ =
    Xml_ast.Element
      (el "bidder"
         [
           Xml_ast.Element (el "date" (txt (date rng)));
           Xml_ast.Element (el "time" (txt (Printf.sprintf "%02d:%02d:00" (Prng.int rng 24) (Prng.int rng 60))));
           Xml_ast.Element
             (el ~attrs:[ ("person", person_id (Prng.int rng pop.n_persons)) ] "personref" []);
           Xml_ast.Element (el "increase" (txt (money rng)));
         ])
  in
  el ~attrs:[ ("id", auction_id i) ] "open_auction"
    ([ Xml_ast.Element (el "initial" (txt (money rng))) ]
    @ (if Prng.bool rng 0.4 then [ Xml_ast.Element (el "reserve" (txt (money rng))) ] else [])
    @ List.init (Prng.geometric rng ~p:0.4 ~max:5) bidder
    @ [
        Xml_ast.Element (el "current" (txt (money rng)));
        Xml_ast.Element
          (el ~attrs:[ ("item", item_id (Prng.int rng pop.n_items)) ] "itemref" []);
        Xml_ast.Element
          (el ~attrs:[ ("person", person_id (Prng.int rng pop.n_persons)) ] "seller" []);
        Xml_ast.Element (gen_annotation rng pop);
        Xml_ast.Element (el "quantity" (txt (string_of_int (Prng.range rng 1 5))));
        Xml_ast.Element (el "type" (txt (if Prng.bool rng 0.5 then "Regular" else "Featured")));
        Xml_ast.Element
          (el "interval"
             [
               Xml_ast.Element (el "start" (txt (date rng)));
               Xml_ast.Element (el "end" (txt (date rng)));
             ]);
      ])

let gen_closed_auction rng pop =
  el "closed_auction"
    [
      Xml_ast.Element
        (el ~attrs:[ ("person", person_id (Prng.int rng pop.n_persons)) ] "seller" []);
      Xml_ast.Element
        (el ~attrs:[ ("person", person_id (Prng.int rng pop.n_persons)) ] "buyer" []);
      Xml_ast.Element
        (el ~attrs:[ ("item", item_id (Prng.int rng pop.n_items)) ] "itemref" []);
      Xml_ast.Element (el "price" (txt (money rng)));
      Xml_ast.Element (el "date" (txt (date rng)));
      Xml_ast.Element (el "quantity" (txt (string_of_int (Prng.range rng 1 5))));
      Xml_ast.Element (el "type" (txt "Regular"));
      Xml_ast.Element (gen_annotation rng pop);
    ]

(* Event emission is the primitive: [doc] collects the very same
   events [stream] feeds to a container sink, so the two can never
   diverge.  Each top-level chunk (one item, person, auction ...) is
   still built as a bounded [Xml_ast] subtree and flushed with
   [Xml_sax.emit_tree], so peak memory is one chunk, not the document.
   Region assignments are drawn for every item up front — region-major
   emission order needs them before the first region opens. *)
let events ?(seed = 42) ~scale emit =
  let rng = Prng.create ~seed in
  let pop = population scale in
  let start tag = emit (Xml_sax.Start_element { tag; attrs = [] }) in
  let close tag = emit (Xml_sax.End_element tag) in
  let sub element = Xml_sax.emit_tree element emit in
  start "site";
  start "regions";
  let assignment = Array.make pop.n_items 0 in
  for i = 0 to pop.n_items - 1 do
    assignment.(i) <- Prng.int rng (Array.length region_names)
  done;
  Array.iteri
    (fun r name ->
      start name;
      for i = 0 to pop.n_items - 1 do
        if assignment.(i) = r then sub (gen_item rng pop i)
      done;
      close name)
    region_names;
  close "regions";
  start "categories";
  for i = 0 to pop.n_categories - 1 do
    sub (gen_category rng i)
  done;
  close "categories";
  sub (gen_catgraph rng pop);
  start "people";
  for i = 0 to pop.n_persons - 1 do
    sub (gen_person rng pop i)
  done;
  close "people";
  start "open_auctions";
  for i = 0 to pop.n_open - 1 do
    sub (gen_open_auction rng pop i)
  done;
  close "open_auctions";
  start "closed_auctions";
  for _ = 1 to pop.n_closed do
    sub (gen_closed_auction rng pop)
  done;
  close "closed_auctions";
  close "site"

let doc ?seed ~scale () =
  let collect = Xml_sax.Collect.create () in
  events ?seed ~scale (Xml_sax.Collect.feed collect);
  { Xml_ast.root = Xml_sax.Collect.root collect }

let graph ?seed ~scale () = Xml_to_graph.graph_of_doc ~config (doc ?seed ~scale ())

let stream ?seed ?mem_budget ?tmp_dir ~scale ~path () =
  Xml_to_graph.stream_to_container ~config ?mem_budget ?tmp_dir ~path (events ?seed ~scale)

let ref_pairs =
  [
    ("incategory", "category");
    ("interest", "category");
    ("edge", "category");
    ("watch", "open_auction");
    ("personref", "person");
    ("seller", "person");
    ("buyer", "person");
    ("author", "person");
    ("itemref", "item");
  ]
