(** Random rooted labeled graphs for property-based testing.

    Every node except the root gets at least one parent among
    earlier-created nodes, so the whole graph is reachable from the
    root (as index theory assumes); [extra_edges] adds arbitrary
    additional edges, including back edges, so the result is a general
    graph, not a DAG. *)

val graph :
  ?seed:int ->
  ?value_fraction:float ->
  nodes:int ->
  n_labels:int ->
  extra_edges:int ->
  unit ->
  Dkindex_graph.Data_graph.t
(** Labels are ["l0" .. "l<n_labels-1>"]; node 0 is the ROOT.
    [value_fraction] (default 0) gives that share of nodes an atomic
    payload from ["v0" .. "v3"], for value-predicate tests. *)

val stream :
  ?seed:int ->
  ?value_fraction:float ->
  ?mem_budget:int ->
  ?tmp_dir:string ->
  nodes:int ->
  n_labels:int ->
  extra_edges:int ->
  path:string ->
  unit ->
  unit
(** [graph] generated straight into a {!Dkindex_graph.Container} file
    at [path] via {!Dkindex_graph.Graph_stream}: adjacency is never
    materialized, and the file is byte-identical to
    [Container.save_graph] of [graph] with the same parameters. *)

val tree :
  ?seed:int -> nodes:int -> n_labels:int -> unit -> Dkindex_graph.Data_graph.t
(** Random tree (exactly one parent per non-root node). *)
