(** Treebank-like synthetic dataset: deeply recursive parse trees.

    The Penn Treebank XML encoding (annotated parse trees) is the
    classic stress test for bisimulation-based indexes: its recursive
    grammar productions (S / NP / VP / PP / SBAR nesting each other to
    depth 30+) make rooted label paths highly diverse, so the 1-index
    barely compresses and the A(k)/D(k) size-for-accuracy trade-off is
    at its sharpest.  The original corpus is licensed, so this is a
    grammar-driven synthetic equivalent: sentences are derived from a
    small probabilistic grammar over the Treebank tags, with word
    leaves as VALUE nodes and trace references (filler-gap [coindexing]
    between moved constituents) as the ID/IDREF edges.

    [scale] is the number of sentences; a scale of 100 yields roughly
    20k nodes of depth ~25. *)

val doc : ?seed:int -> scale:int -> unit -> Dkindex_xml.Xml_ast.doc
val config : Dkindex_xml.Xml_to_graph.config
val graph : ?seed:int -> scale:int -> unit -> Dkindex_graph.Data_graph.t

val ref_pairs : (string * string) list
(** The trace-coindexation reference pairs, for the update experiments. *)
