open Dkindex_xml

let config =
  {
    Xml_to_graph.id_attrs = [ "id" ];
    idref_attrs =
      [ "related"; "definition"; "field"; "reference"; "dataset"; "journal" ];
  }

let words =
  [| "stellar"; "galactic"; "infrared"; "photometric"; "spectral"; "radial";
     "binary"; "variable"; "catalog"; "survey"; "cluster"; "nebula"; "proper";
     "motion"; "magnitude"; "flux" |]

let phrase rng n = String.concat " " (List.init n (fun _ -> Prng.choose rng words))
let el = Xml_ast.element
let txt s = [ Xml_ast.text s ]

let dataset_id i = Printf.sprintf "dataset%d" i
let definition_id i = Printf.sprintf "definition%d" i
let field_id i = Printf.sprintf "field%d" i
let reference_id i = Printf.sprintf "reference%d" i
let journal_id i = Printf.sprintf "journal%d" i

(* Per-document counters so ids are globally unique. *)
type counters = {
  mutable definitions : int;
  mutable fields : int;
  mutable references : int;
  mutable journals : int;
}

let gen_date rng =
  el "date"
    [
      Xml_ast.Element (el "year" (txt (string_of_int (Prng.range rng 1965 2002))));
      Xml_ast.Element (el "month" (txt (string_of_int (Prng.range rng 1 12))));
      Xml_ast.Element (el "day" (txt (string_of_int (Prng.range rng 1 28))));
    ]

let gen_author rng =
  el "author"
    ([
       Xml_ast.Element
         (el "lastName" (txt (String.capitalize_ascii (Prng.choose rng words))));
       Xml_ast.Element (el "firstName" (txt (String.capitalize_ascii (Prng.choose rng words))));
     ]
    @
    if Prng.bool rng 0.3 then [ Xml_ast.Element (el "initial" (txt "Q")) ] else [])

(* Recursive irregular prose: paras may contain footnotes which contain
   paras again; footnotes reference datasets, paras reference fields. *)
let rec gen_para rng cnt ~n_datasets ~depth =
  let attrs =
    if cnt.fields > 0 && Prng.bool rng 0.25 then
      [ ("field", field_id (Prng.int rng cnt.fields)) ]
    else []
  in
  let body = [ Xml_ast.Element (el "text" (txt (phrase rng 8))) ] in
  let notes =
    if depth > 0 && Prng.bool rng 0.3 then
      [ Xml_ast.Element (gen_footnote rng cnt ~n_datasets ~depth:(depth - 1)) ]
    else []
  in
  el ~attrs "para" (body @ notes)

and gen_footnote rng cnt ~n_datasets ~depth =
  let attrs =
    if Prng.bool rng 0.5 then [ ("dataset", dataset_id (Prng.int rng n_datasets)) ] else []
  in
  let paras =
    List.init (Prng.range rng 1 2) (fun _ ->
        Xml_ast.Element (gen_para rng cnt ~n_datasets ~depth))
  in
  el ~attrs "footnote" paras

let gen_source rng cnt =
  (* journal | book | other, with different inner shapes (irregularity). *)
  let authors = List.init (Prng.range rng 1 3) (fun _ -> Xml_ast.Element (gen_author rng)) in
  let kind = Prng.int rng 3 in
  let fresh_journal () =
    let id = cnt.journals in
    cnt.journals <- cnt.journals + 1;
    id
  in
  let inner =
    if kind = 0 then
      el
        ~attrs:[ ("id", journal_id (fresh_journal ())) ]
        "journal"
        ([
           Xml_ast.Element (el "title" (txt (phrase rng 3)));
           Xml_ast.Element (el "name" (txt (phrase rng 2)));
         ]
        @ authors
        @ [ Xml_ast.Element (gen_date rng) ]
        @
        if Prng.bool rng 0.6 then
          [ Xml_ast.Element (el "volume" (txt (string_of_int (Prng.range rng 1 400)))) ]
        else [])
    else if kind = 1 then
      el "book"
        ([ Xml_ast.Element (el "title" (txt (phrase rng 4))) ]
        @ authors
        @ [
            Xml_ast.Element (el "publisher" (txt (phrase rng 2)));
            Xml_ast.Element (gen_date rng);
          ])
    else
      el "other"
        ([ Xml_ast.Element (el "title" (txt (phrase rng 3))) ]
        @ authors
        @
        if Prng.bool rng 0.5 then [ Xml_ast.Element (el "city" (txt (phrase rng 1))) ] else [])
  in
  let attrs =
    if cnt.journals > 0 && kind <> 0 && Prng.bool rng 0.3 then
      [ ("journal", journal_id (Prng.int rng cnt.journals)) ]
    else []
  in
  el ~attrs "source" [ Xml_ast.Element inner ]

let gen_reference rng cnt =
  let id = reference_id cnt.references in
  cnt.references <- cnt.references + 1;
  el ~attrs:[ ("id", id) ] "reference" [ Xml_ast.Element (gen_source rng cnt) ]

let gen_definitions rng cnt =
  let n = Prng.range rng 1 4 in
  let def _ =
    let id = definition_id cnt.definitions in
    cnt.definitions <- cnt.definitions + 1;
    Xml_ast.Element (el ~attrs:[ ("id", id) ] "definition" (txt (phrase rng 5)))
  in
  el "definitions" (List.init n def)

let gen_keywords rng cnt =
  let keyword _ =
    let attrs =
      if cnt.definitions > 0 && Prng.bool rng 0.4 then
        [ ("definition", definition_id (Prng.int rng cnt.definitions)) ]
      else []
    in
    Xml_ast.Element (el ~attrs "keyword" (txt (Prng.choose rng words)))
  in
  el "keywords" (List.init (Prng.range rng 1 5) keyword)

let gen_field rng cnt =
  let id = field_id cnt.fields in
  cnt.fields <- cnt.fields + 1;
  let attrs =
    ("id", id)
    ::
    (if cnt.definitions > 0 && Prng.bool rng 0.5 then
       [ ("definition", definition_id (Prng.int rng cnt.definitions)) ]
     else [])
  in
  el ~attrs "field"
    ([ Xml_ast.Element (el "name" (txt (Prng.choose rng words))) ]
    @ (if Prng.bool rng 0.5 then [ Xml_ast.Element (el "units" (txt "mag")) ] else [])
    @
    if Prng.bool rng 0.3 then [ Xml_ast.Element (el "comment" (txt (phrase rng 4))) ]
    else [])

let gen_table_head rng cnt =
  let fields_before = cnt.fields in
  let fields = List.init (Prng.range rng 2 8) (fun _ -> Xml_ast.Element (gen_field rng cnt)) in
  let links =
    if cnt.fields > fields_before && Prng.bool rng 0.6 then
      let link _ =
        Xml_ast.Element
          (el
             ~attrs:[ ("field", field_id (Prng.range rng fields_before (cnt.fields - 1))) ]
             "tableLink"
             (txt (phrase rng 2)))
      in
      [ Xml_ast.Element (el "tableLinks" (List.init (Prng.range rng 1 3) link)) ]
    else []
  in
  el "tableHead" (links @ [ Xml_ast.Element (el "fields" fields) ])

let gen_history rng cnt =
  let revision _ =
    let attrs =
      if cnt.references > 0 && Prng.bool rng 0.5 then
        [ ("reference", reference_id (Prng.int rng cnt.references)) ]
      else []
    in
    Xml_ast.Element
      (el ~attrs "revision"
         [
           Xml_ast.Element (gen_date rng);
           Xml_ast.Element (el "creator" (txt (phrase rng 2)));
           Xml_ast.Element (el "description" (txt (phrase rng 6)));
         ])
  in
  el "history"
    ([
       Xml_ast.Element
         (el "ingest"
            [ Xml_ast.Element (gen_date rng); Xml_ast.Element (el "creator" (txt (phrase rng 2))) ]);
     ]
    @ List.init (Prng.geometric rng ~p:0.5 ~max:4) revision)

let gen_dataset rng cnt ~n_datasets i =
  let attrs =
    ("id", dataset_id i)
    :: ("subject", Prng.choose rng words)
    ::
    (if Prng.bool rng 0.4 then [ ("related", dataset_id (Prng.int rng n_datasets)) ] else [])
  in
  let altname _ =
    Xml_ast.Element
      (el ~attrs:[ ("type", if Prng.bool rng 0.5 then "ADC" else "CDS") ] "altname"
         (txt (phrase rng 1)))
  in
  (* [optional] must be lazy in its element: the generators allocate
     ids in [cnt], so running one and dropping its output would leave
     dangling references behind. *)
  let optional p gen = if Prng.bool rng p then [ Xml_ast.Element (gen ()) ] else [] in
  el ~attrs "dataset"
    ([ Xml_ast.Element (el "title" (txt (phrase rng 4))) ]
    @ List.init (Prng.geometric rng ~p:0.5 ~max:3) altname
    @ optional 0.7 (fun () -> gen_definitions rng cnt)
    @ optional 0.8 (fun () -> gen_keywords rng cnt)
    @ optional 0.6 (fun () ->
          el "descriptions"
            [
              Xml_ast.Element
                (el "description"
                   (List.init (Prng.range rng 1 3) (fun _ ->
                        Xml_ast.Element (gen_para rng cnt ~n_datasets ~depth:3))));
            ])
    @ List.init (Prng.geometric rng ~p:0.45 ~max:4) (fun _ ->
          Xml_ast.Element (gen_reference rng cnt))
    @ optional 0.7 (fun () -> gen_history rng cnt)
    @ optional 0.75 (fun () -> gen_table_head rng cnt)
    @ [ Xml_ast.Element (el "identifier" (txt (dataset_id i))) ])

(* Event emission is the primitive (see {!Xmark}); one dataset subtree
   is materialized at a time and flushed with [Xml_sax.emit_tree]. *)
let events ?(seed = 43) ~scale emit =
  let rng = Prng.create ~seed in
  let n_datasets = max 1 scale in
  let cnt = { definitions = 0; fields = 0; references = 0; journals = 0 } in
  emit (Xml_sax.Start_element { tag = "datasets"; attrs = [] });
  for i = 0 to n_datasets - 1 do
    Xml_sax.emit_tree (gen_dataset rng cnt ~n_datasets i) emit
  done;
  emit (Xml_sax.End_element "datasets")

let doc ?seed ~scale () =
  let collect = Xml_sax.Collect.create () in
  events ?seed ~scale (Xml_sax.Collect.feed collect);
  { Xml_ast.root = Xml_sax.Collect.root collect }

let graph ?seed ~scale () = Xml_to_graph.graph_of_doc ~config (doc ?seed ~scale ())

let stream ?seed ?mem_budget ?tmp_dir ~scale ~path () =
  Xml_to_graph.stream_to_container ~config ?mem_budget ?tmp_dir ~path (events ?seed ~scale)

let ref_pairs =
  [
    ("dataset", "dataset");
    ("keyword", "definition");
    ("field", "definition");
    ("tableLink", "field");
    ("revision", "reference");
    ("footnote", "dataset");
    ("para", "field");
    ("source", "journal");
  ]
