(** Deterministic SplitMix64 pseudo-random number generator.

    All generators in this library take explicit seeds so that every
    dataset, workload and experiment is reproducible bit-for-bit,
    independent of the stdlib [Random] state. *)

type t

val create : seed:int -> t
val copy : t -> t
val next_int64 : t -> int64

val int : t -> int -> int
(** [int t n] is uniform in [0, n).  @raise Invalid_argument if [n <= 0]. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [lo, hi] inclusive. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val choose : t -> 'a array -> 'a
val choose_list : t -> 'a list -> 'a
val shuffle : t -> 'a array -> unit

val geometric : t -> p:float -> max:int -> int
(** Number of failures before the first success, capped at [max]; used
    for "a few, occasionally many" child counts. *)
