(* Flat int storage behind the CSR layout.  A bigarray rather than an
   int array so the same vector type can sit on the OCaml heap or on a
   memory-mapped file section (Container): the element representation
   is an untagged native word either way, and the accessors below are
   compiler primitives that compile to single loads/stores because the
   element type is statically known. *)

type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

external length : t -> int = "%caml_ba_dim_1"
external get : t -> int -> int = "%caml_ba_ref_1"
external set : t -> int -> int -> unit = "%caml_ba_set_1"
external unsafe_get : t -> int -> int = "%caml_ba_unsafe_ref_1"
external unsafe_set : t -> int -> int -> unit = "%caml_ba_unsafe_set_1"

let create n : t = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n

let zeros n =
  let v = create n in
  Bigarray.Array1.fill v 0;
  v

let init n f =
  let v = create n in
  for i = 0 to n - 1 do
    unsafe_set v i (f i)
  done;
  v

let of_array a = init (Array.length a) (Array.unsafe_get a)

let to_array v = Array.init (length v) (unsafe_get v)

let copy v =
  let w = create (length v) in
  Bigarray.Array1.blit v w;
  w

let sub v ~pos ~len : t = Bigarray.Array1.sub v pos len
let fill v x = Bigarray.Array1.fill v x

let blit ~src ~src_pos ~dst ~dst_pos ~len =
  if len > 0 then
    Bigarray.Array1.blit (Bigarray.Array1.sub src src_pos len)
      (Bigarray.Array1.sub dst dst_pos len)

(* Sorting / searching over [lo, hi) ranges — the Int_arr routines,
   retargeted at the bigarray accessors. *)

let insertion_sort (a : t) lo hi =
  for i = lo + 1 to hi - 1 do
    let x = get a i in
    let j = ref (i - 1) in
    while !j >= lo && get a !j > x do
      set a (!j + 1) (get a !j);
      decr j
    done;
    set a (!j + 1) x
  done

let swap (a : t) i j =
  let t = get a i in
  set a i (get a j);
  set a j t

let rec qsort (a : t) lo hi =
  if hi - lo <= 16 then insertion_sort a lo hi
  else begin
    let mid = lo + ((hi - lo) / 2) in
    if get a mid < get a lo then swap a mid lo;
    if get a (hi - 1) < get a lo then swap a (hi - 1) lo;
    if get a (hi - 1) < get a mid then swap a (hi - 1) mid;
    let pivot = get a mid in
    let i = ref lo and j = ref (hi - 1) in
    while !i <= !j do
      while get a !i < pivot do
        incr i
      done;
      while get a !j > pivot do
        decr j
      done;
      if !i <= !j then begin
        swap a !i !j;
        incr i;
        decr j
      end
    done;
    if !j - lo < hi - !i then begin
      qsort a lo (!j + 1);
      qsort a !i hi
    end
    else begin
      qsort a !i hi;
      qsort a lo (!j + 1)
    end
  end

let sort_range a ~lo ~hi = if hi - lo > 1 then qsort a lo hi

let dedup_range (a : t) ~lo ~hi =
  if hi <= lo then 0
  else begin
    let w = ref (lo + 1) in
    for r = lo + 1 to hi - 1 do
      if get a r <> get a (!w - 1) then begin
        set a !w (get a r);
        incr w
      end
    done;
    !w - lo
  end

let mem_range (a : t) ~lo ~hi x =
  if hi - lo <= 16 then begin
    let i = ref lo in
    while !i < hi && unsafe_get a !i < x do
      incr i
    done;
    !i < hi && unsafe_get a !i = x
  end
  else begin
    let lo = ref lo and hi = ref hi in
    let found = ref false in
    while (not !found) && !lo < !hi do
      let mid = !lo + ((!hi - !lo) / 2) in
      let v = get a mid in
      if v = x then found := true else if v < x then lo := mid + 1 else hi := mid
    done;
    !found
  end
