(** Plain-text persistence for data graphs.

    Format (version 1):
    {v
    dkindex-graph 1
    nodes <n>
    <label name of node 0>
    ...
    edges <m>
    <src> <dst>
    ...
    v} *)

val to_string : Data_graph.t -> string
val of_string : string -> Data_graph.t
(** @raise Failure on malformed input. *)

val save : string -> Data_graph.t -> unit
val load : string -> Data_graph.t
