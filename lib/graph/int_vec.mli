(** Flat int vectors backing the CSR layout.

    A bigarray of untagged native ints rather than an [int array], so
    the same type covers both OCaml-heap storage and sections of a
    memory-mapped {!Container} file.  The type is exposed concretely
    and the accessors are compiler primitives, so [get]/[set] compile
    to single loads/stores at every call site.

    Vectors created here live in malloc'd memory outside the OCaml
    heap; vectors returned by {!Container} are views into a mapped
    file and stay valid as long as the vector value is reachable (the
    mapping is released by the GC finalizer, never explicitly). *)

type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

external length : t -> int = "%caml_ba_dim_1"
external get : t -> int -> int = "%caml_ba_ref_1"
external set : t -> int -> int -> unit = "%caml_ba_set_1"
external unsafe_get : t -> int -> int = "%caml_ba_unsafe_ref_1"
external unsafe_set : t -> int -> int -> unit = "%caml_ba_unsafe_set_1"

val create : int -> t
(** Uninitialized storage — every slot must be written before read. *)

val zeros : int -> t
val init : int -> (int -> int) -> t
val of_array : int array -> t
val to_array : t -> int array
val copy : t -> t

val sub : t -> pos:int -> len:int -> t
(** Zero-copy view sharing storage with the argument. *)

val fill : t -> int -> unit
val blit : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit

val sort_range : t -> lo:int -> hi:int -> unit
(** Sort [\[lo, hi)] increasing, in place. *)

val dedup_range : t -> lo:int -> hi:int -> int
(** Compact a sorted range in place, dropping adjacent duplicates;
    returns the deduplicated length. *)

val mem_range : t -> lo:int -> hi:int -> int -> bool
(** Membership in a sorted range: linear scan on short runs, binary
    search otherwise. *)
