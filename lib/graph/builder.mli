(** Incremental construction of data graphs.

    A builder accumulates nodes and edges and produces an immutable
    {!Data_graph.t}.  The first node added becomes the root and should
    carry the label {!Label.root_name}; {!create} adds it for you. *)

type t

val create : unit -> t
(** A fresh builder whose node [0] is the [ROOT]-labeled root. *)

val create_with_root : string -> t
(** Like {!create} but with a custom root label (used when building
    sub-documents that are later grafted). *)

val root : t -> int

val add_node : t -> string -> int
(** [add_node b label] allocates a new node and returns its id. *)

val add_child : t -> parent:int -> string -> int
(** [add_child b ~parent label] = [add_node] + [add_edge parent]. *)

val add_value : ?text:string -> t -> parent:int -> int
(** Attach a [VALUE]-labeled leaf under [parent] (atomic content),
    optionally recording its payload. *)

val set_value : t -> int -> string -> unit
(** Record (or overwrite) an atomic payload on an existing node. *)

val add_edge : t -> int -> int -> unit
val n_nodes : t -> int
val pool : t -> Label.Pool.t

val build : t -> Data_graph.t
(** Freeze the builder.  The builder may keep being used afterwards;
    later [build]s see later additions. *)
