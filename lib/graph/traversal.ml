let depths g =
  let n = Data_graph.n_nodes g in
  let depth = Array.make n (-1) in
  let queue = Queue.create () in
  depth.(Data_graph.root g) <- 0;
  Queue.add (Data_graph.root g) queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Data_graph.iter_children g u (fun v ->
        if depth.(v) < 0 then begin
          depth.(v) <- depth.(u) + 1;
          Queue.add v queue
        end)
  done;
  depth

let bfs_order g =
  let n = Data_graph.n_nodes g in
  let seen = Array.make n false in
  let order = Array.make n 0 in
  let count = ref 0 in
  let queue = Queue.create () in
  seen.(Data_graph.root g) <- true;
  Queue.add (Data_graph.root g) queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order.(!count) <- u;
    incr count;
    Data_graph.iter_children g u (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v queue
        end)
  done;
  Array.sub order 0 !count

let reachable g ~from =
  let n = Data_graph.n_nodes g in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(from) <- true;
  Queue.add from queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Data_graph.iter_children g u (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v queue
        end)
  done;
  seen

let label_path_to g node ~max_len =
  (* Walk parent edges greedily, preferring any parent; the path is one
     witness among possibly many. *)
  let rec up u acc len =
    if len >= max_len then acc
    else
      match Data_graph.parents g u with
      | [] -> acc
      | p :: _ -> up p (Data_graph.label g p :: acc) (len + 1)
  in
  if max_len <= 0 then [] else up node [ Data_graph.label g node ] 1

let label_counts g =
  let pool = Data_graph.pool g in
  let counts = Array.make (Label.Pool.count pool) 0 in
  Data_graph.iter_nodes g (fun u ->
      let code = Label.to_int (Data_graph.label g u) in
      counts.(code) <- counts.(code) + 1);
  let entries =
    Label.Pool.fold
      (fun code name acc -> (name, counts.(Label.to_int code)) :: acc)
      pool []
  in
  List.sort (fun (_, a) (_, b) -> compare b a) entries
