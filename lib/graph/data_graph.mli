(** The data graph: a rooted, directed, node-labeled graph.

    This is the paper's data model (Section 3): XML and other
    semi-structured data are modeled as a directed graph whose nodes
    carry a label and a unique identifier.  Tree edges (containment)
    and reference edges (ID/IDREF, XLink) are not distinguished.  A
    single root node carries the distinguished label [ROOT].

    Node identifiers are dense integers [0 .. n_nodes - 1]; the root is
    always node [0].  Adjacency is mutable only through {!add_edge} and
    {!remove_edge}, which support the paper's edge updates
    (Section 5.2); node sets are fixed at construction (subgraph
    addition builds a new graph, see {!graft}).

    Internally adjacency is stored in CSR (compressed sparse row)
    layout: a flat offsets vector plus a flat neighbor vector per
    direction ({!Int_vec}), each node's neighbor run sorted
    increasing.  Updates go through a small overflow buffer that is
    folded back into fresh flat vectors once it exceeds a fraction of
    the edge count, so {!iter_children}/{!iter_parents} are
    allocation-free flat loops and {!has_edge} is a binary search in
    the common case.

    Because the flat storage is {!Int_vec} (a native-int bigarray),
    the CSR sections can also be views into a memory-mapped
    {!Container} file ({!of_csr}): queries run identically on a mapped
    graph, and the first overflow fold after a mutation migrates the
    graph to fresh heap-side vectors. *)

type t

(** {1 Accessors} *)

val pool : t -> Label.Pool.t
val n_nodes : t -> int
val n_edges : t -> int
val root : t -> int
val label : t -> int -> Label.t
val label_name : t -> int -> string
val children : t -> int -> int list
(** Materialized child list, sorted increasing.  Allocates; prefer
    {!iter_children} on hot paths. *)

val parents : t -> int -> int list
(** Materialized parent list, sorted increasing.  Allocates; prefer
    {!iter_parents} on hot paths. *)

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val value : t -> int -> string option
(** The atomic payload of a [VALUE] node (text content, attribute
    value), if one was recorded.  Structural algorithms ignore
    payloads; queries with value predicates read them during
    validation. *)

val iter_children : t -> int -> (int -> unit) -> unit
val iter_parents : t -> int -> (int -> unit) -> unit

val exists_children : t -> int -> (int -> bool) -> bool
(** [exists_children g u pred] is [List.exists pred (children g u)]
    without materializing the list; stops at the first hit. *)

val exists_parents : t -> int -> (int -> bool) -> bool
(** [exists_parents g u pred] is [List.exists pred (parents g u)]
    without materializing the list; stops at the first hit. *)

val iter_nodes : t -> (int -> unit) -> unit

val flatten : t -> unit
(** Fold any pending overflow updates back into the flat CSR arrays.
    Semantically a no-op; called implicitly by {!csr_children} and
    {!csr_parents}. *)

val csr_children : t -> Int_vec.t * Int_vec.t
(** [(off, arr)]: node [u]'s children are [arr.(off.(u)) ..
    arr.(off.(u + 1) - 1)], sorted increasing.  Flattens pending
    updates first.  The vectors are the graph's own storage — valid
    until the next mutation, never to be written.  For allocation-free
    hot loops that cannot afford a closure per node. *)

val csr_parents : t -> Int_vec.t * Int_vec.t
(** The parent-direction counterpart of {!csr_children}. *)

val label_codes : t -> Int_vec.t
(** Node label codes ([Label.to_int] of {!label}), the graph's own
    storage — never to be written. *)

val iter_values : t -> (int -> string -> unit) -> unit
(** Visit every (node, payload) pair in increasing node order. *)

val n_values : t -> int

val iter_edges : t -> (int -> int -> unit) -> unit
val fold_nodes : t -> init:'a -> f:('a -> int -> 'a) -> 'a

val nodes_with_label : t -> Label.t -> int list
(** All nodes carrying the given label, in increasing id order.
    Computed once on demand and invalidated by nothing ({!add_edge}
    does not change labels). *)

val has_edge : t -> int -> int -> bool

(** {1 Construction and mutation} *)

val make :
  ?values:(int * string) list ->
  pool:Label.Pool.t ->
  labels:Label.t array ->
  edges:(int * int) list ->
  unit ->
  t
(** [make ~pool ~labels ~edges ()] builds a graph over nodes
    [0 .. Array.length labels - 1] with node [0] as root.  Duplicate
    edges are kept once; self-loops are allowed (they can arise from
    IDREFs).  [values] attaches atomic payloads to nodes.
    @raise Invalid_argument on out-of-range endpoints or if [labels]
    is empty. *)

val of_csr :
  ?values:(int * string) list ->
  pool:Label.Pool.t ->
  label_codes:Int_vec.t ->
  children:Int_vec.t * Int_vec.t ->
  parents:Int_vec.t * Int_vec.t ->
  unit ->
  t
(** [of_csr ~pool ~label_codes ~children:(coff, carr)
    ~parents:(poff, parr) ()] assembles a graph directly from prebuilt
    CSR sections, adopting the vectors without copying — this is the
    O(1) open path for {!Container}-mapped graphs and the exit of the
    streaming builder.  Both directions must already be sorted,
    deduplicated layouts of the same edge set; only shape (lengths and
    edge counts) is validated here.
    @raise Invalid_argument on shape mismatch or zero nodes. *)

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] inserts the edge [u -> v].  No-op if the edge is
    already present. *)

val remove_edge : t -> int -> int -> unit
(** [remove_edge g u v] deletes the edge [u -> v].
    @raise Invalid_argument if the edge is not present. *)

val graft : t -> t -> t * int
(** [graft g h] builds a new graph consisting of [g], a disjoint copy
    of [h] (minus [h]'s root), grafted under [g]'s root: every child of
    [h]'s root becomes a child of [g]'s root.  Labels of [h] are
    re-interned into [g]'s pool (a fresh copy of it).  Returns the new
    graph and the id offset added to [h]'s node ids (node [i > 0] of
    [h] becomes [i - 1 + offset]).  This implements inserting "a new
    file into the database" (Section 5.1). *)

val copy : t -> t
(** Deep copy; mutations on the copy do not affect the original. *)

(** {1 Statistics} *)

type stats = {
  nodes : int;
  edges : int;
  labels : int;
  max_out_degree : int;
  max_in_degree : int;
  max_depth : int;  (** longest shortest-path distance from the root *)
  unreachable : int;  (** nodes not reachable from the root *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
