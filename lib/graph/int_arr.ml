let insertion_sort (a : int array) lo hi =
  for i = lo + 1 to hi - 1 do
    let x = a.(i) in
    let j = ref (i - 1) in
    while !j >= lo && a.(!j) > x do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- x
  done

let swap (a : int array) i j =
  let t = a.(i) in
  a.(i) <- a.(j);
  a.(j) <- t

(* Median-of-three quicksort with insertion sort below a cutoff; the
   smaller partition recurses so stack depth stays O(log n). *)
let rec qsort (a : int array) lo hi =
  if hi - lo <= 16 then insertion_sort a lo hi
  else begin
    let mid = lo + ((hi - lo) / 2) in
    (* order a.(lo), a.(mid), a.(hi-1); pivot = median at mid *)
    if a.(mid) < a.(lo) then swap a mid lo;
    if a.(hi - 1) < a.(lo) then swap a (hi - 1) lo;
    if a.(hi - 1) < a.(mid) then swap a (hi - 1) mid;
    let pivot = a.(mid) in
    let i = ref lo and j = ref (hi - 1) in
    while !i <= !j do
      while a.(!i) < pivot do
        incr i
      done;
      while a.(!j) > pivot do
        decr j
      done;
      if !i <= !j then begin
        swap a !i !j;
        incr i;
        decr j
      end
    done;
    if !j - lo < hi - !i then begin
      qsort a lo (!j + 1);
      qsort a !i hi
    end
    else begin
      qsort a !i hi;
      qsort a lo (!j + 1)
    end
  end

let sort_range a ~lo ~hi = if hi - lo > 1 then qsort a lo hi

let dedup_range (a : int array) ~lo ~hi =
  if hi <= lo then 0
  else begin
    let w = ref (lo + 1) in
    for r = lo + 1 to hi - 1 do
      if a.(r) <> a.(!w - 1) then begin
        a.(!w) <- a.(r);
        incr w
      end
    done;
    !w - lo
  end

let mem_range (a : int array) ~lo ~hi x =
  if hi - lo <= 16 then begin
    (* Typical degrees are tiny: a linear scan beats the branchier
       binary search on short runs.  [lo, hi) comes from a CSR offsets
       array, so the unchecked reads are in bounds. *)
    let i = ref lo in
    while !i < hi && Array.unsafe_get a !i < x do
      incr i
    done;
    !i < hi && Array.unsafe_get a !i = x
  end
  else begin
    let lo = ref lo and hi = ref hi in
    let found = ref false in
    while (not !found) && !lo < !hi do
      let mid = !lo + ((!hi - !lo) / 2) in
      let v = a.(mid) in
      if v = x then found := true else if v < x then lo := mid + 1 else hi := mid
    done;
    !found
  end

let of_list l =
  let a = Array.of_list l in
  sort_range a ~lo:0 ~hi:(Array.length a);
  a

let merge (a : int array) (b : int array) =
  let la = Array.length a and lb = Array.length b in
  if la = 0 then b
  else if lb = 0 then a
  else begin
    let out = Array.make (la + lb) 0 in
    let i = ref 0 and j = ref 0 and w = ref 0 in
    while !i < la && !j < lb do
      if a.(!i) <= b.(!j) then begin
        out.(!w) <- a.(!i);
        incr i
      end
      else begin
        out.(!w) <- b.(!j);
        incr j
      end;
      incr w
    done;
    Array.blit a !i out !w (la - !i);
    Array.blit b !j out (!w + la - !i) (lb - !j);
    out
  end

let merge_many arrays =
  match List.filter (fun a -> Array.length a > 0) arrays with
  | [] -> [||]
  | [ a ] -> a
  | arrays ->
    (* Pairwise tournament over a queue of runs. *)
    let q = Queue.create () in
    List.iter (fun a -> Queue.add a q) arrays;
    while Queue.length q > 1 do
      let a = Queue.pop q in
      let b = Queue.pop q in
      Queue.add (merge a b) q
    done;
    Queue.pop q

let to_list = Array.to_list
