(** The on-disk container format: versioned header, CRC'd section
    table, page-aligned sections holding the graph's flat int vectors.

    A container opens in O(1): the header and section table are
    validated (magic, kind, word size, byte order, CRC, and every
    section extent against the real file length — so truncation is
    caught up front), the int sections are memory-mapped in place as
    {!Int_vec} values, and only the small byte sections (label pool,
    node values) are parsed.  Pages are loaded on demand by the OS.

    {b Lifetime and ownership.}  Mappings are private (copy-on-write,
    never written back) and live as long as the vectors that view them
    — released by the GC finalizer, so an opened graph owns its file
    content with no explicit close.  The file descriptor is closed
    before {!open_graph} returns; deleting or rewriting the file while
    a graph still uses the old mapping is safe (the pages stay).
    Mutating an opened graph is allowed: updates accumulate in
    {!Data_graph}'s heap-side overflow layer, and the first overflow
    fold migrates the whole graph to heap vectors.

    Section bodies carry CRC-32s checked only under [~verify] — a full
    scan of a multi-GB file on every open would defeat the mapping. *)

type kind = Graph | Index

type error =
  | Bad_magic  (** not a container file *)
  | Bad_kind of { expected : int; got : int }
  | Bad_word_size of int
  | Bad_endianness
  | Truncated of string  (** header, table, or a section extent past EOF *)
  | Crc_mismatch of string  (** ["header"] or a section tag *)
  | Missing_section of string
  | Malformed of string  (** shape inconsistency between sections *)

exception Error of error

val pp_kind : Format.formatter -> kind -> unit
val pp_error : Format.formatter -> error -> unit

val save_graph : Data_graph.t -> string -> unit
(** Write [g] as a graph container (atomically: tmp file + rename).
    Pending updates are flattened first, so the stored CSR is
    canonical — sorted, deduplicated runs. *)

val open_graph : ?verify:bool -> string -> Data_graph.t
(** Map a graph container.  O(1) plus the byte sections; with
    [~verify:true] additionally streams every section through its
    CRC first.  @raise Error on any validation failure. *)

val probe : string -> kind option
(** [probe path] is the container kind of [path], or [None] if the
    file is missing, too short, or not a container. *)

(** {1 Writer — for streaming producers}

    {!Graph_stream} and the index serializer write containers without
    materializing sections in RAM: open a section, append ints or
    bytes (buffered, CRC'd and spilled in chunks), close it.  Sections
    land in file order; [finish] patches the header and renames. *)

module Writer : sig
  type t

  val create : string -> kind:kind -> n_sections:int -> t
  val begin_section : t -> string -> unit
  val write_int : t -> int -> unit
  val write_vec : t -> Int_vec.t -> unit
  val write_string : t -> string -> unit
  val end_section : t -> unit

  val int_section : t -> string -> Int_vec.t -> unit
  (** [begin_section]; the whole vector; [end_section]. *)

  val finish : t -> unit
  (** Validates the declared section count, writes the header, fsyncs,
      renames into place. *)

  val abort : t -> unit
  (** Close and unlink the temporary file (idempotent). *)
end

(** {1 Shared graph-section encoders}

    One code path for {!save_graph} and the streaming builder, so that
    equal graph content produces byte-identical files. *)

val graph_n_sections : int

val write_graph_sections : Writer.t -> Data_graph.t -> unit
(** The {!graph_n_sections} sections of {!save_graph}, into an open
    writer — embedding a graph inside a larger (e.g. index)
    container. *)

val write_pool : Writer.t -> Label.Pool.t -> unit
val write_values : Writer.t -> (int * string) list -> unit
(** [values] must be sorted by node id. *)

val write_meta : Writer.t -> int list -> unit

val read_injector : (Unix.file_descr -> bytes -> int -> int -> int) ref
(** The read primitive every container load goes through (default
    [Unix.read]).  Fault-injection tests swap in a misbehaving reader
    (short reads, EINTR, bit flips) to exercise the CRC and
    truncation checks; the internal read loop already absorbs EINTR
    and short reads, so only corruption may surface — as {!Error}.
    Reset it to [Unix.read] afterwards.  Not domain-safe; test-only. *)

(** {1 Reader — for non-graph kinds}

    The index serializer reads its containers through this: the same
    header validation and section mapping as {!open_graph}, plus
    access to sections beyond the embedded graph's eight. *)

module Reader : sig
  type t

  val with_file : ?verify:bool -> kind:kind -> string -> (t -> 'a) -> 'a
  (** Open, validate (optionally streaming every section CRC), run the
      callback, close the descriptor.  Mappings taken inside the
      callback outlive it (see the module doc on lifetime).
      @raise Error on any validation failure. *)

  val graph : t -> Data_graph.t
  (** Decode the embedded graph sections (the {!graph_n_sections}
      written by {!save_graph} / {!Graph_stream}). *)

  val int_vec : t -> string -> Int_vec.t
  (** Map an int section by tag.  @raise Error if missing or
      malformed. *)
end
