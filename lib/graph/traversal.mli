(** Graph traversal utilities shared by index construction, query
    evaluation and the benchmarks. *)

val bfs_order : Data_graph.t -> int array
(** Nodes reachable from the root, in breadth-first order. *)

val depths : Data_graph.t -> int array
(** [depths g].(u) is the shortest-path distance from the root to [u],
    or [-1] if unreachable. *)

val reachable : Data_graph.t -> from:int -> bool array
(** Forward reachability from a node (inclusive). *)

val label_path_to : Data_graph.t -> int -> max_len:int -> Label.t list
(** One label path ending at the given node, at most [max_len] labels
    long (including the node's own label), obtained by walking parent
    edges; prefers longer paths.  Used by the workload generator. *)

val label_counts : Data_graph.t -> (string * int) list
(** Number of nodes per label name, sorted by decreasing count. *)
