(** Streaming graph construction straight to a {!Container} file.

    The {!Builder} API, except edges feed two external sorters (one
    per direction) instead of an in-RAM list, and {!finish} writes the
    container without ever materializing the adjacency: RAM use is
    O(n) label codes + fixed sorter buffers, with the O(m) edge data
    in spilled runs.

    Streaming a generator through this module and saving the same
    generator's materialized graph with {!Container.save_graph}
    produce byte-identical files: the merge-dedup here computes
    exactly the canonical CSR [Data_graph.make] builds, and the
    section encoders are shared. *)

type t

val create :
  ?root_label:string ->
  ?mem_budget:int ->
  ?tmp_dir:string ->
  path:string ->
  unit ->
  t
(** Node 0 is the root (labeled [ROOT] unless overridden).
    [mem_budget] is each direction's sorter budget in words. *)

val root : t -> int
val n_nodes : t -> int
val pool : t -> Label.Pool.t
val add_node : t -> string -> int
val add_child : t -> parent:int -> string -> int
val add_value : ?text:string -> t -> parent:int -> int
val set_value : t -> int -> string -> unit

val add_edge : t -> int -> int -> unit
(** Endpoints may reference nodes not yet added; ranges are checked at
    {!finish}. *)

val finish : t -> unit
(** Merge both directions and write the container (atomic tmp +
    rename).  Single-use.
    @raise Invalid_argument on out-of-range edge endpoints. *)

val abort : t -> unit
(** Drop sorter resources without writing anything. *)
