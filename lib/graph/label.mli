(** Interned node labels.

    Every data graph owns a {!Pool.t} that maps label names (XML tag
    names, attribute names, or the distinguished labels [ROOT] and
    [VALUE]) to dense integer codes.  All index structures work on the
    integer codes; names are only needed for parsing and printing. *)

type t = private int
(** A label code, dense in [0 .. Pool.count - 1] for its pool. *)

val to_int : t -> int
val of_int : int -> t
(** [of_int] trusts the caller that the code belongs to the pool in
    use; it exists so that arrays indexed by labels can be rebuilt. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val root_name : string
(** ["ROOT"], the distinguished label of the single root node. *)

val value_name : string
(** ["VALUE"], the distinguished label of atomic value nodes. *)

module Pool : sig
  type label := t
  type t

  val create : unit -> t
  val intern : t -> string -> label
  (** [intern pool name] returns the code for [name], allocating a
      fresh code on first sight. *)

  val find_opt : t -> string -> label option
  val name : t -> label -> string
  (** @raise Invalid_argument if the code was not allocated by [pool]. *)

  val count : t -> int
  val fold : (label -> string -> 'a -> 'a) -> t -> 'a -> 'a
  val copy : t -> t
end

val pp : Pool.t -> Format.formatter -> t -> unit
