(** Graphviz export for data graphs (debugging and documentation). *)

val to_dot : ?max_nodes:int -> Data_graph.t -> string
(** Render the graph in DOT syntax.  [max_nodes] (default 500) caps the
    output for large graphs; extra nodes are elided with a note. *)

val write_dot : ?max_nodes:int -> string -> Data_graph.t -> unit
(** [write_dot path g] writes [to_dot g] to [path]. *)
