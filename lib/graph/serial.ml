let magic = "dkindex-graph 1"
let magic_v2 = "dkindex-graph 2"

(* Payloads are written percent-escaped so they stay one-per-line. *)
let escape_value s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\n' -> Buffer.add_string buf "%0A"
      | '\r' -> Buffer.add_string buf "%0D"
      | '%' -> Buffer.add_string buf "%25"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape_value s =
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    if Char.equal s.[!i] '%' && !i + 2 < n then begin
      (match String.sub s (!i + 1) 2 with
      | "0A" -> Buffer.add_char buf '\n'
      | "0D" -> Buffer.add_char buf '\r'
      | "25" -> Buffer.add_char buf '%'
      | other -> Buffer.add_string buf ("%" ^ other));
      i := !i + 3
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let to_string g =
  let buf = Buffer.create (Data_graph.n_nodes g * 16) in
  Buffer.add_string buf magic_v2;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "nodes %d\n" (Data_graph.n_nodes g));
  Data_graph.iter_nodes g (fun u ->
      Buffer.add_string buf (Data_graph.label_name g u);
      Buffer.add_char buf '\n');
  Buffer.add_string buf (Printf.sprintf "edges %d\n" (Data_graph.n_edges g));
  (* Canonical (u, v) order: a graph mutated through the overflow
     layer and its reloaded copy serialize byte-identically. *)
  let edges = Array.make (Data_graph.n_edges g) (0, 0) in
  let i = ref 0 in
  Data_graph.iter_edges g (fun u v ->
      edges.(!i) <- (u, v);
      incr i);
  Array.sort compare edges;
  Array.iter (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v)) edges;
  let values = ref [] in
  Data_graph.iter_nodes g (fun u ->
      match Data_graph.value g u with
      | Some payload -> values := (u, payload) :: !values
      | None -> ());
  Buffer.add_string buf (Printf.sprintf "values %d\n" (List.length !values));
  List.iter
    (fun (u, payload) -> Buffer.add_string buf (Printf.sprintf "%d %s\n" u (escape_value payload)))
    (List.rev !values);
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  let fail fmt = Printf.ksprintf failwith fmt in
  let version = ref 2 in
  let expect_header rest =
    match rest with
    | first :: rest when String.equal first magic_v2 -> rest
    | first :: rest when String.equal first magic ->
      version := 1;
      rest
    | _ -> fail "Serial.of_string: bad magic"
  in
  let parse_count keyword line =
    match String.split_on_char ' ' line with
    | [ kw; n ] when String.equal kw keyword -> (
      match int_of_string_opt n with
      | Some n when n >= 0 -> n
      | _ -> fail "Serial.of_string: bad %s count" keyword)
    | _ -> fail "Serial.of_string: expected '%s <count>'" keyword
  in
  match expect_header lines with
  | [] -> fail "Serial.of_string: truncated"
  | count_line :: rest ->
    let n = parse_count "nodes" count_line in
    let pool = Label.Pool.create () in
    let labels = Array.make (max n 1) (Label.of_int 0) in
    let rec read_labels i rest =
      if i >= n then rest
      else
        match rest with
        | name :: rest ->
          labels.(i) <- Label.Pool.intern pool name;
          read_labels (i + 1) rest
        | [] -> fail "Serial.of_string: truncated labels"
    in
    let rest = read_labels 0 rest in
    (match rest with
    | [] -> fail "Serial.of_string: missing edges"
    | edge_line :: rest ->
      let m = parse_count "edges" edge_line in
      let edges = ref [] in
      let rec read_edges i rest =
        if i >= m then rest
        else
          match rest with
          | line :: rest -> (
            match String.split_on_char ' ' line with
            | [ u; v ] -> (
              match (int_of_string_opt u, int_of_string_opt v) with
              | Some u, Some v ->
                edges := (u, v) :: !edges;
                read_edges (i + 1) rest
              | _ -> fail "Serial.of_string: bad edge")
            | _ -> fail "Serial.of_string: bad edge line")
          | [] -> fail "Serial.of_string: truncated edges"
      in
      let rest = read_edges 0 rest in
      if n = 0 then fail "Serial.of_string: empty graph";
      let values = ref [] in
      (if !version >= 2 then
         match rest with
         | [] -> fail "Serial.of_string: missing values section"
         | values_line :: rest ->
           let nv = parse_count "values" values_line in
           let rec read_values i rest =
             if i >= nv then ()
             else
               match rest with
               | line :: rest -> (
                 match String.index_opt line ' ' with
                 | Some sp -> (
                   match int_of_string_opt (String.sub line 0 sp) with
                   | Some u ->
                     values :=
                       (u, unescape_value (String.sub line (sp + 1) (String.length line - sp - 1)))
                       :: !values;
                     read_values (i + 1) rest
                   | None -> fail "Serial.of_string: bad value line")
                 | None -> fail "Serial.of_string: bad value line")
               | [] -> fail "Serial.of_string: truncated values"
           in
           read_values 0 rest);
      Data_graph.make ~values:!values ~pool ~labels:(Array.sub labels 0 n) ~edges:!edges ())

let save path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string (really_input_string ic len))
