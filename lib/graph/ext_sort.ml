(* External merge sort for the out-of-core paths: buffer items in a
   flat Int_vec, spill sorted runs to anonymous temp files when the
   buffer fills, then k-way merge the runs (plus the in-RAM tail) in
   one streaming pass.  Two shapes are needed: fixed (a, b) pairs (the
   streaming CSR builder) and variable-length int records (the
   external refinement pass).

   Temp files are created and unlinked immediately — the descriptors
   keep them alive, so a crash leaks nothing.  Runs are raw
   little-endian native words; with a [mem_budget] of B words a
   dataset of W words makes ceil(W/B) runs, merged with a linear
   min-scan over the run heads (run counts here are tens, not
   thousands, so a loser tree would be noise). *)

let default_budget = 1 lsl 22  (* words: 32 MiB per sorter *)

let temp_fd ?tmp_dir () =
  let dir = match tmp_dir with Some d -> d | None -> Filename.get_temp_dir_name () in
  let path = Filename.temp_file ~temp_dir:dir "dkxsort" ".run" in
  let fd = Unix.openfile path [ O_RDWR ] 0o600 in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  fd

let really_write fd buf off len =
  let w = ref off and rem = ref len in
  while !rem > 0 do
    let k = Unix.write fd buf !w !rem in
    w := !w + k;
    rem := !rem - k
  done

(* Buffered little-endian word reader over a run fd. *)
module Run = struct
  type t = {
    fd : Unix.file_descr;
    buf : Bytes.t;
    mutable pos : int;
    mutable len : int;
    mutable eof : bool;
  }

  let buf_cap = 1 lsl 16

  let of_fd fd =
    ignore (Unix.lseek fd 0 SEEK_SET);
    { fd; buf = Bytes.create buf_cap; pos = 0; len = 0; eof = false }

  let refill r =
    if not r.eof then begin
      (* Keep any partial word: compact, then top up. *)
      let rem = r.len - r.pos in
      if rem > 0 then Bytes.blit r.buf r.pos r.buf 0 rem;
      r.pos <- 0;
      r.len <- rem;
      let k = Unix.read r.fd r.buf r.len (buf_cap - r.len) in
      if k = 0 then r.eof <- true else r.len <- r.len + k
    end

  let read_word r =
    if r.len - r.pos < 8 then refill r;
    if r.len - r.pos < 8 then None
    else begin
      let x = Int64.to_int (Bytes.get_int64_le r.buf r.pos) in
      r.pos <- r.pos + 8;
      Some x
    end

  let close r = try Unix.close r.fd with Unix.Unix_error _ -> ()
end

(* Spill words [0, words) of [data] as one sorted run. *)
let spill ?tmp_dir data words =
  let fd = temp_fd ?tmp_dir () in
  let chunk = Bytes.create (1 lsl 16) in
  let fill = ref 0 in
  for i = 0 to words - 1 do
    if !fill = Bytes.length chunk then begin
      really_write fd chunk 0 !fill;
      fill := 0
    end;
    Bytes.set_int64_le chunk !fill (Int64.of_int (Int_vec.unsafe_get data i));
    fill := !fill + 8
  done;
  if !fill > 0 then really_write fd chunk 0 !fill;
  fd

(* ------------------------------------------------------------------ *)

module Pairs = struct
  type t = {
    data : Int_vec.t;  (* pairs at slots [2i, 2i + 1) *)
    cap_pairs : int;
    tmp_dir : string option;
    mutable n : int;  (* buffered pairs *)
    mutable runs : Unix.file_descr list;  (* reversed *)
    mutable total : int;
    mutable closed : bool;
  }

  let create ?(mem_budget = default_budget) ?tmp_dir () =
    let cap_pairs = max 1024 (mem_budget / 2) in
    {
      data = Int_vec.create (2 * cap_pairs);
      cap_pairs;
      tmp_dir;
      n = 0;
      runs = [];
      total = 0;
      closed = false;
    }

  (* In-place quicksort of the buffered pairs by (a, b) — the Int_vec
     qsort, with two-word elements. *)
  let cmp_pair d i j =
    let c = compare (Int_vec.unsafe_get d (2 * i)) (Int_vec.unsafe_get d (2 * j)) in
    if c <> 0 then c
    else compare (Int_vec.unsafe_get d ((2 * i) + 1)) (Int_vec.unsafe_get d ((2 * j) + 1))

  let swap_pair d i j =
    let a = Int_vec.unsafe_get d (2 * i) and b = Int_vec.unsafe_get d ((2 * i) + 1) in
    Int_vec.unsafe_set d (2 * i) (Int_vec.unsafe_get d (2 * j));
    Int_vec.unsafe_set d ((2 * i) + 1) (Int_vec.unsafe_get d ((2 * j) + 1));
    Int_vec.unsafe_set d (2 * j) a;
    Int_vec.unsafe_set d ((2 * j) + 1) b

  let rec qsort d lo hi =
    if hi - lo > 1 then begin
      if hi - lo <= 16 then
        for i = lo + 1 to hi - 1 do
          let j = ref i in
          while !j > lo && cmp_pair d (!j - 1) !j > 0 do
            swap_pair d (!j - 1) !j;
            decr j
          done
        done
      else begin
        let mid = lo + ((hi - lo) / 2) in
        if cmp_pair d mid lo < 0 then swap_pair d mid lo;
        if cmp_pair d (hi - 1) lo < 0 then swap_pair d (hi - 1) lo;
        if cmp_pair d (hi - 1) mid < 0 then swap_pair d (hi - 1) mid;
        (* Median-of-three leaves the pivot at [mid]; park it at
           [hi - 2] so partitioning can't lose track of it. *)
        swap_pair d mid (hi - 2);
        let p = hi - 2 in
        let i = ref lo and j = ref (hi - 2) in
        let continue = ref true in
        while !continue do
          incr i;
          while cmp_pair d !i p < 0 do
            incr i
          done;
          decr j;
          while cmp_pair d !j p > 0 do
            decr j
          done;
          if !i >= !j then continue := false else swap_pair d !i !j
        done;
        swap_pair d !i (hi - 2);
        qsort d lo !i;
        qsort d (!i + 1) hi
      end
    end

  let sort_buffer t = qsort t.data 0 t.n

  let flush_run t =
    if t.n > 0 then begin
      sort_buffer t;
      t.runs <- spill ?tmp_dir:t.tmp_dir t.data (2 * t.n) :: t.runs;
      t.n <- 0
    end

  let add t a b =
    if t.closed then invalid_arg "Ext_sort.Pairs: closed";
    if t.n = t.cap_pairs then flush_run t;
    Int_vec.unsafe_set t.data (2 * t.n) a;
    Int_vec.unsafe_set t.data ((2 * t.n) + 1) b;
    t.n <- t.n + 1;
    t.total <- t.total + 1

  let total t = t.total

  let iter_merged t f =
    if t.closed then invalid_arg "Ext_sort.Pairs: closed";
    sort_buffer t;
    let runs = Array.of_list (List.rev_map Run.of_fd t.runs) in
    let k = Array.length runs in
    (* Head pair of each source; source [k] is the in-RAM tail. *)
    let ha = Array.make (k + 1) 0 and hb = Array.make (k + 1) 0 in
    let live = Array.make (k + 1) false in
    let tail_pos = ref 0 in
    let advance s =
      if s < k then
        match Run.read_word runs.(s) with
        | None -> live.(s) <- false
        | Some a ->
          (match Run.read_word runs.(s) with
          | None -> live.(s) <- false  (* torn pair: impossible for our own runs *)
          | Some b ->
            ha.(s) <- a;
            hb.(s) <- b;
            live.(s) <- true)
      else if !tail_pos < t.n then begin
        ha.(s) <- Int_vec.get t.data (2 * !tail_pos);
        hb.(s) <- Int_vec.get t.data ((2 * !tail_pos) + 1);
        incr tail_pos;
        live.(s) <- true
      end
      else live.(s) <- false
    in
    for s = 0 to k do
      advance s
    done;
    let any = ref true in
    while !any do
      let best = ref (-1) in
      for s = 0 to k do
        if
          live.(s)
          && (!best < 0
             || ha.(s) < ha.(!best)
             || (ha.(s) = ha.(!best) && hb.(s) < hb.(!best)))
        then best := s
      done;
      if !best < 0 then any := false
      else begin
        f ha.(!best) hb.(!best);
        advance !best
      end
    done;
    Array.iter Run.close runs;
    t.runs <- [];
    t.n <- 0;
    t.closed <- true

  let close t =
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.runs;
    t.runs <- [];
    t.closed <- true
end

(* ------------------------------------------------------------------ *)

module Records = struct
  (* Variable-length int records, ordered lexicographically
     (element-wise; a strict prefix sorts first).  Runs frame each
     record as [len; w0 .. w_{len-1}]. *)

  type t = {
    data : Int_vec.t;
    cap : int;
    tmp_dir : string option;
    mutable fill : int;  (* words used in data *)
    mutable starts : int array;  (* record start offsets, [0, n) *)
    mutable lens : int array;
    mutable n : int;
    mutable runs : Unix.file_descr list;
    mutable total : int;
    mutable closed : bool;
  }

  let create ?(mem_budget = default_budget) ?tmp_dir () =
    let cap = max 4096 mem_budget in
    {
      data = Int_vec.create cap;
      cap;
      tmp_dir;
      fill = 0;
      starts = Array.make 1024 0;
      lens = Array.make 1024 0;
      n = 0;
      runs = [];
      total = 0;
      closed = false;
    }

  let lex_cmp d s1 l1 s2 l2 =
    let l = min l1 l2 in
    let i = ref 0 and c = ref 0 in
    while !c = 0 && !i < l do
      c := compare (Int_vec.unsafe_get d (s1 + !i)) (Int_vec.unsafe_get d (s2 + !i));
      incr i
    done;
    if !c <> 0 then !c else compare l1 l2

  let sort_buffer t =
    let idx = Array.init t.n Fun.id in
    let d = t.data and starts = t.starts and lens = t.lens in
    Array.sort (fun i j -> lex_cmp d starts.(i) lens.(i) starts.(j) lens.(j)) idx;
    idx

  let flush_run t =
    if t.n > 0 then begin
      let idx = sort_buffer t in
      let fd = temp_fd ?tmp_dir:t.tmp_dir () in
      let chunk = Bytes.create (1 lsl 16) in
      let fill = ref 0 in
      let put x =
        if !fill = Bytes.length chunk then begin
          really_write fd chunk 0 !fill;
          fill := 0
        end;
        Bytes.set_int64_le chunk !fill (Int64.of_int x);
        fill := !fill + 8
      in
      Array.iter
        (fun i ->
          put t.lens.(i);
          for j = t.starts.(i) to t.starts.(i) + t.lens.(i) - 1 do
            put (Int_vec.get t.data j)
          done)
        idx;
      if !fill > 0 then really_write fd chunk 0 !fill;
      t.runs <- fd :: t.runs;
      t.n <- 0;
      t.fill <- 0
    end

  let grow_meta t =
    let cap = Array.length t.starts in
    if t.n = cap then begin
      t.starts <- Array.append t.starts (Array.make cap 0);
      t.lens <- Array.append t.lens (Array.make cap 0)
    end

  let add t rec_ ~len =
    if t.closed then invalid_arg "Ext_sort.Records: closed";
    if len > t.cap then invalid_arg "Ext_sort.Records: record exceeds budget";
    if t.fill + len > t.cap then flush_run t;
    grow_meta t;
    t.starts.(t.n) <- t.fill;
    t.lens.(t.n) <- len;
    for i = 0 to len - 1 do
      Int_vec.unsafe_set t.data (t.fill + i) (Array.unsafe_get rec_ i)
    done;
    t.fill <- t.fill + len;
    t.n <- t.n + 1;
    t.total <- t.total + 1

  let total t = t.total

  (* Run-head state for the merge: each source holds its current
     record in a growable scratch array. *)
  type head = {
    mutable hbuf : int array;
    mutable hlen : int;
    mutable hlive : bool;
  }

  let iter_merged t f =
    if t.closed then invalid_arg "Ext_sort.Records: closed";
    let idx = sort_buffer t in
    let runs = Array.of_list (List.rev_map Run.of_fd t.runs) in
    let k = Array.length runs in
    let heads =
      Array.init (k + 1) (fun _ -> { hbuf = Array.make 64 0; hlen = 0; hlive = false })
    in
    let tail_pos = ref 0 in
    let advance s =
      let h = heads.(s) in
      if s < k then
        match Run.read_word runs.(s) with
        | None -> h.hlive <- false
        | Some len ->
          if Array.length h.hbuf < len then h.hbuf <- Array.make (2 * len) 0;
          for i = 0 to len - 1 do
            match Run.read_word runs.(s) with
            | Some x -> h.hbuf.(i) <- x
            | None -> raise (Failure "Ext_sort.Records: torn run record")
          done;
          h.hlen <- len;
          h.hlive <- true
      else if !tail_pos < t.n then begin
        let i = idx.(!tail_pos) in
        incr tail_pos;
        let len = t.lens.(i) in
        if Array.length h.hbuf < len then h.hbuf <- Array.make (2 * len) 0;
        for j = 0 to len - 1 do
          h.hbuf.(j) <- Int_vec.get t.data (t.starts.(i) + j)
        done;
        h.hlen <- len;
        h.hlive <- true
      end
      else h.hlive <- false
    in
    let head_cmp a b =
      let la = heads.(a).hlen and lb = heads.(b).hlen in
      let da = heads.(a).hbuf and db = heads.(b).hbuf in
      let l = min la lb in
      let i = ref 0 and c = ref 0 in
      while !c = 0 && !i < l do
        c := compare (Array.unsafe_get da !i) (Array.unsafe_get db !i);
        incr i
      done;
      if !c <> 0 then !c else compare la lb
    in
    for s = 0 to k do
      advance s
    done;
    let any = ref true in
    while !any do
      let best = ref (-1) in
      for s = 0 to k do
        if heads.(s).hlive && (!best < 0 || head_cmp s !best < 0) then best := s
      done;
      if !best < 0 then any := false
      else begin
        f heads.(!best).hbuf heads.(!best).hlen;
        advance !best
      end
    done;
    Array.iter Run.close runs;
    t.runs <- [];
    t.n <- 0;
    t.fill <- 0;
    t.closed <- true

  let close t =
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.runs;
    t.runs <- [];
    t.closed <- true
end
