type t = {
  pool : Label.Pool.t;
  labels : Label.t array;
  children : int list array;
  parents : int list array;
  values : (int, string) Hashtbl.t;  (* node -> atomic payload *)
  mutable n_edges : int;
  mutable by_label : int list array option;
      (* label code -> node ids, built lazily; labels never change *)
}

let pool g = g.pool
let n_nodes g = Array.length g.labels
let n_edges g = g.n_edges
let root _ = 0
let label g u = g.labels.(u)
let label_name g u = Label.Pool.name g.pool g.labels.(u)
let value g u = Hashtbl.find_opt g.values u
let children g u = g.children.(u)
let parents g u = g.parents.(u)
let out_degree g u = List.length g.children.(u)
let in_degree g u = List.length g.parents.(u)
let iter_children g u f = List.iter f g.children.(u)
let iter_parents g u f = List.iter f g.parents.(u)

let iter_nodes g f =
  for u = 0 to n_nodes g - 1 do
    f u
  done

let iter_edges g f =
  iter_nodes g (fun u -> List.iter (fun v -> f u v) g.children.(u))

let fold_nodes g ~init ~f =
  let acc = ref init in
  iter_nodes g (fun u -> acc := f !acc u);
  !acc

let nodes_with_label g l =
  let table =
    match g.by_label with
    | Some table -> table
    | None ->
      let table = Array.make (Label.Pool.count g.pool) [] in
      (* Walk ids downwards so each bucket ends up increasing. *)
      for u = n_nodes g - 1 downto 0 do
        let code = Label.to_int g.labels.(u) in
        table.(code) <- u :: table.(code)
      done;
      g.by_label <- Some table;
      table
  in
  let code = Label.to_int l in
  if code < 0 || code >= Array.length table then [] else table.(code)

let has_edge g u v = List.mem v g.children.(u)

let check_range n (u, v) =
  if u < 0 || u >= n || v < 0 || v >= n then
    invalid_arg (Printf.sprintf "Data_graph: edge (%d, %d) out of range" u v)

let make ?(values = []) ~pool ~labels ~edges () =
  let n = Array.length labels in
  if n = 0 then invalid_arg "Data_graph.make: no nodes";
  let children = Array.make n [] and parents = Array.make n [] in
  let seen = Hashtbl.create (List.length edges) in
  let n_edges = ref 0 in
  let add (u, v) =
    check_range n (u, v);
    if not (Hashtbl.mem seen (u, v)) then begin
      Hashtbl.add seen (u, v) ();
      children.(u) <- v :: children.(u);
      parents.(v) <- u :: parents.(v);
      incr n_edges
    end
  in
  List.iter add edges;
  let value_table = Hashtbl.create (max 16 (List.length values)) in
  List.iter
    (fun (u, payload) ->
      if u < 0 || u >= n then invalid_arg "Data_graph.make: value node out of range";
      Hashtbl.replace value_table u payload)
    values;
  {
    pool;
    labels = Array.copy labels;
    children;
    parents;
    values = value_table;
    n_edges = !n_edges;
    by_label = None;
  }

let add_edge g u v =
  check_range (n_nodes g) (u, v);
  if not (has_edge g u v) then begin
    g.children.(u) <- v :: g.children.(u);
    g.parents.(v) <- u :: g.parents.(v);
    g.n_edges <- g.n_edges + 1
  end

let remove_once x l =
  let rec go acc = function
    | [] -> None
    | y :: rest -> if y = x then Some (List.rev_append acc rest) else go (y :: acc) rest
  in
  go [] l

let remove_edge g u v =
  check_range (n_nodes g) (u, v);
  match remove_once v g.children.(u) with
  | None -> invalid_arg (Printf.sprintf "Data_graph.remove_edge: no edge (%d, %d)" u v)
  | Some children ->
    g.children.(u) <- children;
    (match remove_once u g.parents.(v) with
    | Some parents -> g.parents.(v) <- parents
    | None -> assert false);
    g.n_edges <- g.n_edges - 1

let copy g =
  {
    pool = Label.Pool.copy g.pool;
    labels = Array.copy g.labels;
    children = Array.copy g.children;
    parents = Array.copy g.parents;
    values = Hashtbl.copy g.values;
    n_edges = g.n_edges;
    by_label = None;
  }

let graft g h =
  let pool = Label.Pool.copy g.pool in
  let ng = n_nodes g and nh = n_nodes h in
  (* h's root (node 0) is dropped; its other nodes shift by offset - 1. *)
  let offset = ng in
  let remap u = u - 1 + offset in
  let labels = Array.make (ng + nh - 1) (Label.of_int 0) in
  Array.blit g.labels 0 labels 0 ng;
  for u = 1 to nh - 1 do
    labels.(remap u) <- Label.Pool.intern pool (label_name h u)
  done;
  let edges = ref [] in
  iter_edges g (fun u v -> edges := (u, v) :: !edges);
  iter_edges h (fun u v ->
      let u' = if u = 0 then root g else remap u
      and v' = if v = 0 then root g else remap v in
      edges := (u', v') :: !edges);
  let values = ref [] in
  Hashtbl.iter (fun u payload -> values := (u, payload) :: !values) g.values;
  Hashtbl.iter
    (fun u payload -> if u > 0 then values := (remap u, payload) :: !values)
    h.values;
  (make ~values:!values ~pool ~labels ~edges:!edges (), offset)

type stats = {
  nodes : int;
  edges : int;
  labels : int;
  max_out_degree : int;
  max_in_degree : int;
  max_depth : int;
  unreachable : int;
}

let stats g =
  let n = n_nodes g in
  let depth = Array.make n (-1) in
  depth.(root g) <- 0;
  let queue = Queue.create () in
  Queue.add (root g) queue;
  let max_depth = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    if depth.(u) > !max_depth then max_depth := depth.(u);
    iter_children g u (fun v ->
        if depth.(v) < 0 then begin
          depth.(v) <- depth.(u) + 1;
          Queue.add v queue
        end)
  done;
  let unreachable = ref 0 in
  Array.iter (fun d -> if d < 0 then incr unreachable) depth;
  let max_out = ref 0 and max_in = ref 0 in
  iter_nodes g (fun u ->
      if out_degree g u > !max_out then max_out := out_degree g u;
      if in_degree g u > !max_in then max_in := in_degree g u);
  {
    nodes = n;
    edges = n_edges g;
    labels = Label.Pool.count g.pool;
    max_out_degree = !max_out;
    max_in_degree = !max_in;
    max_depth = !max_depth;
    unreachable = !unreachable;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "nodes=%d edges=%d labels=%d max_out=%d max_in=%d max_depth=%d unreachable=%d"
    s.nodes s.edges s.labels s.max_out_degree s.max_in_degree s.max_depth
    s.unreachable
