(* Adjacency lives in a CSR (compressed sparse row) layout: one flat
   offsets array and one flat neighbor array per direction, with each
   node's neighbor run sorted increasing.  Mutation goes through a
   small overflow layer — per-node extra-edge lists for additions and a
   tombstone set for deletions — that is folded back into fresh CSR
   arrays once it grows past a fraction of the edge count, so updates
   stay amortized O(1) and the hot iteration paths stay allocation-free
   flat-array loops almost all the time. *)

type adj = {
  mutable off : int array;  (* n + 1 offsets into arr *)
  mutable arr : int array;  (* neighbor runs, each sorted increasing *)
}

type t = {
  pool : Label.Pool.t;
  labels : Label.t array;
  children : adj;
  parents : adj;
  values : (int, string) Hashtbl.t;  (* node -> atomic payload *)
  mutable n_edges : int;
  (* Overflow layer: recent additions as per-node lists (unsorted,
     newest first), recent deletions as (u, v) tombstones against the
     CSR. *)
  extra_children : int list array;
  extra_parents : int list array;
  deleted : (int * int, unit) Hashtbl.t;
  mutable n_extra : int;
  mutable n_deleted : int;
  mutable rebuild_at : int;  (* overflow size that triggers a rebuild *)
  mutable by_label : int list array option;
      (* label code -> node ids, built lazily; labels never change *)
}

let pool g = g.pool
let n_nodes g = Array.length g.labels
let n_edges g = g.n_edges
let root _ = 0
let label g u = g.labels.(u)
let label_name g u = Label.Pool.name g.pool g.labels.(u)
let value g u = Hashtbl.find_opt g.values u

(* ------------------------------------------------------------------ *)
(* CSR construction *)

(* Build a children CSR for [n] nodes from an edge producer ([iter]
   must yield the same multiset on every call): counting-sort by
   source, sort each run, then compact duplicates in place.  Returns
   the deduplicated layout and edge count. *)
let csr_of_edges n iter =
  let deg = Array.make (n + 1) 0 in
  iter (fun u _ -> deg.(u + 1) <- deg.(u + 1) + 1);
  for i = 1 to n do
    deg.(i) <- deg.(i) + deg.(i - 1)
  done;
  let fill = Array.copy deg in
  let arr = Array.make deg.(n) 0 in
  iter (fun u v ->
      arr.(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1);
  (* Sort and dedup each run, compacting the whole array. *)
  let off = Array.make (n + 1) 0 in
  let w = ref 0 in
  for u = 0 to n - 1 do
    off.(u) <- !w;
    let lo = deg.(u) and hi = deg.(u + 1) in
    Int_arr.sort_range arr ~lo ~hi;
    let len = Int_arr.dedup_range arr ~lo ~hi in
    Array.blit arr lo arr !w len;
    w := !w + len
  done;
  off.(n) <- !w;
  ({ off; arr = (if !w = Array.length arr then arr else Array.sub arr 0 !w) }, !w)

(* The reverse CSR of a deduplicated children CSR.  Scanning sources in
   increasing order appends each parent in increasing order, so runs
   come out sorted without a sorting pass. *)
let reverse_csr n children =
  let deg = Array.make (n + 1) 0 in
  for i = 0 to children.off.(n) - 1 do
    let v = children.arr.(i) in
    deg.(v + 1) <- deg.(v + 1) + 1
  done;
  for i = 1 to n do
    deg.(i) <- deg.(i) + deg.(i - 1)
  done;
  let fill = Array.copy deg in
  let arr = Array.make deg.(n) 0 in
  for u = 0 to n - 1 do
    for i = children.off.(u) to children.off.(u + 1) - 1 do
      let v = children.arr.(i) in
      arr.(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1
    done
  done;
  { off = deg; arr }

(* ------------------------------------------------------------------ *)
(* Iteration: CSR run (skipping tombstones when any exist) + overflow *)

let iter_children g u f =
  let off = g.children.off and arr = g.children.arr in
  if g.n_deleted = 0 then
    for i = off.(u) to off.(u + 1) - 1 do
      f arr.(i)
    done
  else
    for i = off.(u) to off.(u + 1) - 1 do
      if not (Hashtbl.mem g.deleted (u, arr.(i))) then f arr.(i)
    done;
  if g.n_extra > 0 then List.iter f g.extra_children.(u)

let iter_parents g u f =
  let off = g.parents.off and arr = g.parents.arr in
  if g.n_deleted = 0 then
    for i = off.(u) to off.(u + 1) - 1 do
      f arr.(i)
    done
  else
    for i = off.(u) to off.(u + 1) - 1 do
      if not (Hashtbl.mem g.deleted (arr.(i), u)) then f arr.(i)
    done;
  if g.n_extra > 0 then List.iter f g.extra_parents.(u)

let exists_children g u pred =
  let off = g.children.off and arr = g.children.arr in
  let i = ref off.(u) and hi = off.(u + 1) in
  let found = ref false in
  if g.n_deleted = 0 then
    while (not !found) && !i < hi do
      if pred arr.(!i) then found := true;
      incr i
    done
  else
    while (not !found) && !i < hi do
      if (not (Hashtbl.mem g.deleted (u, arr.(!i)))) && pred arr.(!i) then found := true;
      incr i
    done;
  !found || (g.n_extra > 0 && List.exists pred g.extra_children.(u))

let exists_parents g u pred =
  let off = g.parents.off and arr = g.parents.arr in
  let i = ref off.(u) and hi = off.(u + 1) in
  let found = ref false in
  if g.n_deleted = 0 then
    while (not !found) && !i < hi do
      if pred arr.(!i) then found := true;
      incr i
    done
  else
    while (not !found) && !i < hi do
      if (not (Hashtbl.mem g.deleted (arr.(!i), u))) && pred arr.(!i) then found := true;
      incr i
    done;
  !found || (g.n_extra > 0 && List.exists pred g.extra_parents.(u))

let collect_sorted g adj ~extra ~del u =
  (* Materialize one node's neighbor list, sorted increasing. *)
  let off = adj.off and arr = adj.arr in
  let lo = off.(u) and hi = off.(u + 1) in
  let base = ref [] in
  for i = hi - 1 downto lo do
    if g.n_deleted = 0 || not (Hashtbl.mem g.deleted (del u arr.(i))) then
      base := arr.(i) :: !base
  done;
  match (if g.n_extra = 0 then [] else extra.(u)) with
  | [] -> !base
  | extras -> List.merge Int.compare !base (List.sort Int.compare extras)

let children g u = collect_sorted g g.children ~extra:g.extra_children ~del:(fun u v -> (u, v)) u
let parents g u = collect_sorted g g.parents ~extra:g.extra_parents ~del:(fun u v -> (v, u)) u

let degree_of g adj ~extra ~del u =
  let lo = adj.off.(u) and hi = adj.off.(u + 1) in
  let d = ref 0 in
  if g.n_deleted = 0 then d := hi - lo
  else
    for i = lo to hi - 1 do
      if not (Hashtbl.mem g.deleted (del u adj.arr.(i))) then incr d
    done;
  if g.n_extra > 0 then d := !d + List.length extra.(u);
  !d

let out_degree g u = degree_of g g.children ~extra:g.extra_children ~del:(fun u v -> (u, v)) u
let in_degree g u = degree_of g g.parents ~extra:g.extra_parents ~del:(fun u v -> (v, u)) u

let iter_nodes g f =
  for u = 0 to n_nodes g - 1 do
    f u
  done

let iter_edges g f = iter_nodes g (fun u -> iter_children g u (fun v -> f u v))

let fold_nodes g ~init ~f =
  let acc = ref init in
  iter_nodes g (fun u -> acc := f !acc u);
  !acc

let nodes_with_label g l =
  let table =
    match g.by_label with
    | Some table -> table
    | None ->
      let table = Array.make (Label.Pool.count g.pool) [] in
      (* Walk ids downwards so each bucket ends up increasing. *)
      for u = n_nodes g - 1 downto 0 do
        let code = Label.to_int g.labels.(u) in
        table.(code) <- u :: table.(code)
      done;
      g.by_label <- Some table;
      table
  in
  let code = Label.to_int l in
  if code < 0 || code >= Array.length table then [] else table.(code)

let has_edge g u v =
  (not (g.n_deleted > 0 && Hashtbl.mem g.deleted (u, v)))
  && (Int_arr.mem_range g.children.arr ~lo:g.children.off.(u) ~hi:g.children.off.(u + 1) v
     || (g.n_extra > 0 && List.memq v g.extra_children.(u)))

(* A tombstoned CSR edge still occupies its slot, so membership of the
   base layout alone (ignoring tombstones) also matters for updates. *)
let in_csr g u v =
  Int_arr.mem_range g.children.arr ~lo:g.children.off.(u) ~hi:g.children.off.(u + 1) v

let check_range n u v =
  if u < 0 || u >= n || v < 0 || v >= n then
    invalid_arg (Printf.sprintf "Data_graph: edge (%d, %d) out of range" u v)

(* Recomputed only at (re)build time so the mutation fast path does no
   division; using the edge count as of the last rebuild leaves the
   amortization argument intact. *)
let rebuild_threshold m = max 32 (m / 8)

(* ------------------------------------------------------------------ *)
(* Construction and mutation *)

let make ?(values = []) ~pool ~labels ~edges () =
  let n = Array.length labels in
  if n = 0 then invalid_arg "Data_graph.make: no nodes";
  List.iter (fun (u, v) -> check_range n u v) edges;
  let children, m = csr_of_edges n (fun f -> List.iter (fun (u, v) -> f u v) edges) in
  let parents = reverse_csr n children in
  let value_table = Hashtbl.create (max 16 (List.length values)) in
  List.iter
    (fun (u, payload) ->
      if u < 0 || u >= n then invalid_arg "Data_graph.make: value node out of range";
      Hashtbl.replace value_table u payload)
    values;
  {
    pool;
    labels = Array.copy labels;
    children;
    parents;
    values = value_table;
    n_edges = m;
    extra_children = Array.make n [];
    extra_parents = Array.make n [];
    deleted = Hashtbl.create 8;
    n_extra = 0;
    n_deleted = 0;
    rebuild_at = rebuild_threshold m;
    by_label = None;
  }

(* Fold the overflow layer back into flat arrays.  Amortized: runs
   after O(n_edges) overflow operations and costs O(n + m). *)
let rebuild_csr g =
  let n = n_nodes g in
  let children, m = csr_of_edges n (fun f -> iter_edges g (fun u v -> f u v)) in
  g.children.off <- children.off;
  g.children.arr <- children.arr;
  let parents = reverse_csr n { off = children.off; arr = children.arr } in
  g.parents.off <- parents.off;
  g.parents.arr <- parents.arr;
  Array.fill g.extra_children 0 n [];
  Array.fill g.extra_parents 0 n [];
  Hashtbl.reset g.deleted;
  g.n_extra <- 0;
  g.n_deleted <- 0;
  g.n_edges <- m;
  g.rebuild_at <- rebuild_threshold m

let maybe_rebuild g =
  if g.n_extra + g.n_deleted > g.rebuild_at then rebuild_csr g

let flatten g = if g.n_extra + g.n_deleted > 0 then rebuild_csr g

let csr_children g =
  flatten g;
  (g.children.off, g.children.arr)

let csr_parents g =
  flatten g;
  (g.parents.off, g.parents.arr)

let add_edge g u v =
  check_range (n_nodes g) u v;
  (* [u] and [v] are validated above, so array reads are unchecked on
     this hot path (loaders add edges in bulk). *)
  if g.n_deleted > 0 && Hashtbl.mem g.deleted (u, v) then begin
    (* The slot still exists in the CSR: just lift the tombstone. *)
    Hashtbl.remove g.deleted (u, v);
    g.n_deleted <- g.n_deleted - 1;
    g.n_edges <- g.n_edges + 1
  end
  else begin
    let lo = Array.unsafe_get g.children.off u in
    let hi = Array.unsafe_get g.children.off (u + 1) in
    let in_csr =
      (* Hand-inlined short scan: ocamlopt does not inline functions
         containing loops across modules, and this is the hottest loop
         in bulk loading. *)
      if hi - lo <= 16 then begin
        let arr = g.children.arr in
        let i = ref lo in
        while !i < hi && Array.unsafe_get arr !i < v do
          incr i
        done;
        !i < hi && Array.unsafe_get arr !i = v
      end
      else Int_arr.mem_range g.children.arr ~lo ~hi v
    in
    if
      not
        (in_csr || (g.n_extra > 0 && List.memq v (Array.unsafe_get g.extra_children u)))
    then begin
      Array.unsafe_set g.extra_children u (v :: Array.unsafe_get g.extra_children u);
      Array.unsafe_set g.extra_parents v (u :: Array.unsafe_get g.extra_parents v);
      g.n_extra <- g.n_extra + 1;
      g.n_edges <- g.n_edges + 1;
      if g.n_extra + g.n_deleted > g.rebuild_at then rebuild_csr g
    end
  end

let remove_once x l =
  let rec go acc = function
    | [] -> None
    | y :: rest -> if y = x then Some (List.rev_append acc rest) else go (y :: acc) rest
  in
  go [] l

let remove_edge g u v =
  check_range (n_nodes g) u v;
  if not (has_edge g u v) then
    invalid_arg (Printf.sprintf "Data_graph.remove_edge: no edge (%d, %d)" u v);
  if in_csr g u v then begin
    Hashtbl.replace g.deleted (u, v) ();
    g.n_deleted <- g.n_deleted + 1
  end
  else begin
    (match remove_once v g.extra_children.(u) with
    | Some rest -> g.extra_children.(u) <- rest
    | None -> assert false);
    (match remove_once u g.extra_parents.(v) with
    | Some rest -> g.extra_parents.(v) <- rest
    | None -> assert false);
    g.n_extra <- g.n_extra - 1
  end;
  g.n_edges <- g.n_edges - 1;
  maybe_rebuild g

let copy g =
  {
    pool = Label.Pool.copy g.pool;
    labels = Array.copy g.labels;
    children = { off = Array.copy g.children.off; arr = Array.copy g.children.arr };
    parents = { off = Array.copy g.parents.off; arr = Array.copy g.parents.arr };
    values = Hashtbl.copy g.values;
    n_edges = g.n_edges;
    extra_children = Array.copy g.extra_children;
    extra_parents = Array.copy g.extra_parents;
    deleted = Hashtbl.copy g.deleted;
    n_extra = g.n_extra;
    n_deleted = g.n_deleted;
    rebuild_at = g.rebuild_at;
    by_label = None;
  }

let graft g h =
  let pool = Label.Pool.copy g.pool in
  let ng = n_nodes g and nh = n_nodes h in
  (* h's root (node 0) is dropped; its other nodes shift by offset - 1. *)
  let offset = ng in
  let remap u = u - 1 + offset in
  let labels = Array.make (ng + nh - 1) (Label.of_int 0) in
  Array.blit g.labels 0 labels 0 ng;
  for u = 1 to nh - 1 do
    labels.(remap u) <- Label.Pool.intern pool (label_name h u)
  done;
  let edges = ref [] in
  iter_edges g (fun u v -> edges := (u, v) :: !edges);
  iter_edges h (fun u v ->
      let u' = if u = 0 then root g else remap u
      and v' = if v = 0 then root g else remap v in
      edges := (u', v') :: !edges);
  let values = ref [] in
  Hashtbl.iter (fun u payload -> values := (u, payload) :: !values) g.values;
  Hashtbl.iter
    (fun u payload -> if u > 0 then values := (remap u, payload) :: !values)
    h.values;
  (make ~values:!values ~pool ~labels ~edges:!edges (), offset)

type stats = {
  nodes : int;
  edges : int;
  labels : int;
  max_out_degree : int;
  max_in_degree : int;
  max_depth : int;
  unreachable : int;
}

let stats g =
  let n = n_nodes g in
  let depth = Array.make n (-1) in
  depth.(root g) <- 0;
  let queue = Queue.create () in
  Queue.add (root g) queue;
  let max_depth = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    if depth.(u) > !max_depth then max_depth := depth.(u);
    iter_children g u (fun v ->
        if depth.(v) < 0 then begin
          depth.(v) <- depth.(u) + 1;
          Queue.add v queue
        end)
  done;
  let unreachable = ref 0 in
  Array.iter (fun d -> if d < 0 then incr unreachable) depth;
  let max_out = ref 0 and max_in = ref 0 in
  iter_nodes g (fun u ->
      if out_degree g u > !max_out then max_out := out_degree g u;
      if in_degree g u > !max_in then max_in := in_degree g u);
  {
    nodes = n;
    edges = n_edges g;
    labels = Label.Pool.count g.pool;
    max_out_degree = !max_out;
    max_in_degree = !max_in;
    max_depth = !max_depth;
    unreachable = !unreachable;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "nodes=%d edges=%d labels=%d max_out=%d max_in=%d max_depth=%d unreachable=%d"
    s.nodes s.edges s.labels s.max_out_degree s.max_in_degree s.max_depth
    s.unreachable
