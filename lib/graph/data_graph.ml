(* Adjacency lives in a CSR (compressed sparse row) layout: one flat
   offsets vector and one flat neighbor vector per direction, with each
   node's neighbor run sorted increasing.  Mutation goes through a
   small overflow layer — per-node extra-edge lists for additions and a
   tombstone set for deletions — that is folded back into fresh CSR
   vectors once it grows past a fraction of the edge count, so updates
   stay amortized O(1) and the hot iteration paths stay allocation-free
   flat loads almost all the time.

   The flat storage is Int_vec (a native-int bigarray), so the same
   code path serves heap-resident graphs and graphs whose CSR sections
   are memory-mapped straight out of a Container file.  A mapped graph
   behaves identically; its first overflow fold simply rebuilds into
   fresh heap-side vectors (the mapping itself is never written). *)

type adj = {
  mutable off : Int_vec.t;  (* n + 1 offsets into arr *)
  mutable arr : Int_vec.t;  (* neighbor runs, each sorted increasing *)
}

type t = {
  pool : Label.Pool.t;
  labels : Int_vec.t;  (* node -> label code *)
  children : adj;
  parents : adj;
  values : (int, string) Hashtbl.t;  (* node -> atomic payload *)
  mutable n_edges : int;
  (* Overflow layer: recent additions as per-node lists (unsorted,
     newest first), recent deletions as (u, v) tombstones against the
     CSR. *)
  extra_children : int list array;
  extra_parents : int list array;
  deleted : (int * int, unit) Hashtbl.t;
  mutable n_extra : int;
  mutable n_deleted : int;
  mutable rebuild_at : int;  (* overflow size that triggers a rebuild *)
  mutable by_label : int list array option;
      (* label code -> node ids, built lazily; labels never change *)
}

let pool g = g.pool
let n_nodes g = Int_vec.length g.labels
let n_edges g = g.n_edges
let root _ = 0
let label g u = Label.of_int (Int_vec.get g.labels u)
let label_name g u = Label.Pool.name g.pool (Label.of_int (Int_vec.get g.labels u))
let value g u = Hashtbl.find_opt g.values u

(* ------------------------------------------------------------------ *)
(* CSR construction *)

(* Build a children CSR for [n] nodes from an edge producer ([iter]
   must yield the same multiset on every call): counting-sort by
   source, sort each run, then compact duplicates in place.  Returns
   the deduplicated layout and edge count. *)
let csr_of_edges n iter =
  let deg = Int_vec.zeros (n + 1) in
  iter (fun u _ -> Int_vec.set deg (u + 1) (Int_vec.get deg (u + 1) + 1));
  for i = 1 to n do
    Int_vec.set deg i (Int_vec.get deg i + Int_vec.get deg (i - 1))
  done;
  let fill = Int_vec.copy deg in
  let arr = Int_vec.create (Int_vec.get deg n) in
  iter (fun u v ->
      Int_vec.set arr (Int_vec.get fill u) v;
      Int_vec.set fill u (Int_vec.get fill u + 1));
  (* Sort and dedup each run, compacting the whole vector. *)
  let off = Int_vec.zeros (n + 1) in
  let w = ref 0 in
  for u = 0 to n - 1 do
    Int_vec.set off u !w;
    let lo = Int_vec.get deg u and hi = Int_vec.get deg (u + 1) in
    Int_vec.sort_range arr ~lo ~hi;
    let len = Int_vec.dedup_range arr ~lo ~hi in
    (* Left-to-right compaction: the write cursor never passes the
       read cursor, so copying in place is safe. *)
    for i = 0 to len - 1 do
      Int_vec.set arr (!w + i) (Int_vec.get arr (lo + i))
    done;
    w := !w + len
  done;
  Int_vec.set off n !w;
  let arr =
    if !w = Int_vec.length arr then arr else Int_vec.sub arr ~pos:0 ~len:!w
  in
  ({ off; arr }, !w)

(* The reverse CSR of a deduplicated children CSR.  Scanning sources in
   increasing order appends each parent in increasing order, so runs
   come out sorted without a sorting pass. *)
let reverse_csr n children =
  let deg = Int_vec.zeros (n + 1) in
  for i = 0 to Int_vec.get children.off n - 1 do
    let v = Int_vec.get children.arr i in
    Int_vec.set deg (v + 1) (Int_vec.get deg (v + 1) + 1)
  done;
  for i = 1 to n do
    Int_vec.set deg i (Int_vec.get deg i + Int_vec.get deg (i - 1))
  done;
  let fill = Int_vec.copy deg in
  let arr = Int_vec.create (Int_vec.get deg n) in
  for u = 0 to n - 1 do
    for i = Int_vec.get children.off u to Int_vec.get children.off (u + 1) - 1 do
      let v = Int_vec.get children.arr i in
      Int_vec.set arr (Int_vec.get fill v) u;
      Int_vec.set fill v (Int_vec.get fill v + 1)
    done
  done;
  { off = deg; arr }

(* ------------------------------------------------------------------ *)
(* Iteration: CSR run (skipping tombstones when any exist) + overflow *)

let iter_children g u f =
  let off = g.children.off and arr = g.children.arr in
  if g.n_deleted = 0 then
    for i = Int_vec.get off u to Int_vec.get off (u + 1) - 1 do
      f (Int_vec.unsafe_get arr i)
    done
  else
    for i = Int_vec.get off u to Int_vec.get off (u + 1) - 1 do
      let v = Int_vec.unsafe_get arr i in
      if not (Hashtbl.mem g.deleted (u, v)) then f v
    done;
  if g.n_extra > 0 then List.iter f g.extra_children.(u)

let iter_parents g u f =
  let off = g.parents.off and arr = g.parents.arr in
  if g.n_deleted = 0 then
    for i = Int_vec.get off u to Int_vec.get off (u + 1) - 1 do
      f (Int_vec.unsafe_get arr i)
    done
  else
    for i = Int_vec.get off u to Int_vec.get off (u + 1) - 1 do
      let v = Int_vec.unsafe_get arr i in
      if not (Hashtbl.mem g.deleted (v, u)) then f v
    done;
  if g.n_extra > 0 then List.iter f g.extra_parents.(u)

let exists_children g u pred =
  let off = g.children.off and arr = g.children.arr in
  let i = ref (Int_vec.get off u) and hi = Int_vec.get off (u + 1) in
  let found = ref false in
  if g.n_deleted = 0 then
    while (not !found) && !i < hi do
      if pred (Int_vec.unsafe_get arr !i) then found := true;
      incr i
    done
  else
    while (not !found) && !i < hi do
      let v = Int_vec.unsafe_get arr !i in
      if (not (Hashtbl.mem g.deleted (u, v))) && pred v then found := true;
      incr i
    done;
  !found || (g.n_extra > 0 && List.exists pred g.extra_children.(u))

let exists_parents g u pred =
  let off = g.parents.off and arr = g.parents.arr in
  let i = ref (Int_vec.get off u) and hi = Int_vec.get off (u + 1) in
  let found = ref false in
  if g.n_deleted = 0 then
    while (not !found) && !i < hi do
      if pred (Int_vec.unsafe_get arr !i) then found := true;
      incr i
    done
  else
    while (not !found) && !i < hi do
      let v = Int_vec.unsafe_get arr !i in
      if (not (Hashtbl.mem g.deleted (v, u))) && pred v then found := true;
      incr i
    done;
  !found || (g.n_extra > 0 && List.exists pred g.extra_parents.(u))

let collect_sorted g adj ~extra ~del u =
  (* Materialize one node's neighbor list, sorted increasing. *)
  let off = adj.off and arr = adj.arr in
  let lo = Int_vec.get off u and hi = Int_vec.get off (u + 1) in
  let base = ref [] in
  for i = hi - 1 downto lo do
    let v = Int_vec.get arr i in
    if g.n_deleted = 0 || not (Hashtbl.mem g.deleted (del u v)) then
      base := v :: !base
  done;
  match (if g.n_extra = 0 then [] else extra.(u)) with
  | [] -> !base
  | extras -> List.merge Int.compare !base (List.sort Int.compare extras)

let children g u = collect_sorted g g.children ~extra:g.extra_children ~del:(fun u v -> (u, v)) u
let parents g u = collect_sorted g g.parents ~extra:g.extra_parents ~del:(fun u v -> (v, u)) u

let degree_of g adj ~extra ~del u =
  let lo = Int_vec.get adj.off u and hi = Int_vec.get adj.off (u + 1) in
  let d = ref 0 in
  if g.n_deleted = 0 then d := hi - lo
  else
    for i = lo to hi - 1 do
      if not (Hashtbl.mem g.deleted (del u (Int_vec.get adj.arr i))) then incr d
    done;
  if g.n_extra > 0 then d := !d + List.length extra.(u);
  !d

let out_degree g u = degree_of g g.children ~extra:g.extra_children ~del:(fun u v -> (u, v)) u
let in_degree g u = degree_of g g.parents ~extra:g.extra_parents ~del:(fun u v -> (v, u)) u

let iter_nodes g f =
  for u = 0 to n_nodes g - 1 do
    f u
  done

let iter_edges g f = iter_nodes g (fun u -> iter_children g u (fun v -> f u v))

let fold_nodes g ~init ~f =
  let acc = ref init in
  iter_nodes g (fun u -> acc := f !acc u);
  !acc

let nodes_with_label g l =
  let table =
    match g.by_label with
    | Some table -> table
    | None ->
      let table = Array.make (Label.Pool.count g.pool) [] in
      (* Walk ids downwards so each bucket ends up increasing. *)
      for u = n_nodes g - 1 downto 0 do
        let code = Int_vec.get g.labels u in
        table.(code) <- u :: table.(code)
      done;
      g.by_label <- Some table;
      table
  in
  let code = Label.to_int l in
  if code < 0 || code >= Array.length table then [] else table.(code)

let has_edge g u v =
  (not (g.n_deleted > 0 && Hashtbl.mem g.deleted (u, v)))
  && (Int_vec.mem_range g.children.arr
        ~lo:(Int_vec.get g.children.off u)
        ~hi:(Int_vec.get g.children.off (u + 1))
        v
     || (g.n_extra > 0 && List.memq v g.extra_children.(u)))

(* A tombstoned CSR edge still occupies its slot, so membership of the
   base layout alone (ignoring tombstones) also matters for updates. *)
let in_csr g u v =
  Int_vec.mem_range g.children.arr
    ~lo:(Int_vec.get g.children.off u)
    ~hi:(Int_vec.get g.children.off (u + 1))
    v

let check_range n u v =
  if u < 0 || u >= n || v < 0 || v >= n then
    invalid_arg (Printf.sprintf "Data_graph: edge (%d, %d) out of range" u v)

(* Recomputed only at (re)build time so the mutation fast path does no
   division; using the edge count as of the last rebuild leaves the
   amortization argument intact. *)
let rebuild_threshold m = max 32 (m / 8)

(* ------------------------------------------------------------------ *)
(* Construction and mutation *)

let make ?(values = []) ~pool ~labels ~edges () =
  let n = Array.length labels in
  if n = 0 then invalid_arg "Data_graph.make: no nodes";
  List.iter (fun (u, v) -> check_range n u v) edges;
  let children, m = csr_of_edges n (fun f -> List.iter (fun (u, v) -> f u v) edges) in
  let parents = reverse_csr n children in
  let value_table = Hashtbl.create (max 16 (List.length values)) in
  List.iter
    (fun (u, payload) ->
      if u < 0 || u >= n then invalid_arg "Data_graph.make: value node out of range";
      Hashtbl.replace value_table u payload)
    values;
  {
    pool;
    labels = Int_vec.init n (fun u -> Label.to_int labels.(u));
    children;
    parents;
    values = value_table;
    n_edges = m;
    extra_children = Array.make n [];
    extra_parents = Array.make n [];
    deleted = Hashtbl.create 8;
    n_extra = 0;
    n_deleted = 0;
    rebuild_at = rebuild_threshold m;
    by_label = None;
  }

(* Assemble a graph directly from prebuilt CSR sections (a Container
   mapping or a streamed build).  The vectors are adopted, not copied:
   for a mapped file this is what makes open O(1).  Both directions
   must already be sorted, deduplicated views of the same edge set —
   Container guarantees that for files it wrote. *)
let of_csr ?(values = []) ~pool ~label_codes ~children:(coff, carr)
    ~parents:(poff, parr) () =
  let n = Int_vec.length label_codes in
  if n = 0 then invalid_arg "Data_graph.of_csr: no nodes";
  if Int_vec.length coff <> n + 1 || Int_vec.length poff <> n + 1 then
    invalid_arg "Data_graph.of_csr: offset length mismatch";
  let m = Int_vec.get coff n in
  if Int_vec.length carr <> m || Int_vec.length parr <> m || Int_vec.get poff n <> m
  then invalid_arg "Data_graph.of_csr: edge count mismatch";
  let value_table = Hashtbl.create (max 16 (List.length values)) in
  List.iter (fun (u, payload) -> Hashtbl.replace value_table u payload) values;
  {
    pool;
    labels = label_codes;
    children = { off = coff; arr = carr };
    parents = { off = poff; arr = parr };
    values = value_table;
    n_edges = m;
    extra_children = Array.make n [];
    extra_parents = Array.make n [];
    deleted = Hashtbl.create 8;
    n_extra = 0;
    n_deleted = 0;
    rebuild_at = rebuild_threshold m;
    by_label = None;
  }

(* Fold the overflow layer back into flat vectors.  Amortized: runs
   after O(n_edges) overflow operations and costs O(n + m).  On a
   mapped graph this is also the migration point: the fresh vectors
   live on the heap side and the file mapping is no longer read. *)
let rebuild_csr g =
  let n = n_nodes g in
  let children, m = csr_of_edges n (fun f -> iter_edges g (fun u v -> f u v)) in
  g.children.off <- children.off;
  g.children.arr <- children.arr;
  let parents = reverse_csr n { off = children.off; arr = children.arr } in
  g.parents.off <- parents.off;
  g.parents.arr <- parents.arr;
  Array.fill g.extra_children 0 n [];
  Array.fill g.extra_parents 0 n [];
  Hashtbl.reset g.deleted;
  g.n_extra <- 0;
  g.n_deleted <- 0;
  g.n_edges <- m;
  g.rebuild_at <- rebuild_threshold m

let maybe_rebuild g =
  if g.n_extra + g.n_deleted > g.rebuild_at then rebuild_csr g

let flatten g = if g.n_extra + g.n_deleted > 0 then rebuild_csr g

let csr_children g =
  flatten g;
  (g.children.off, g.children.arr)

let csr_parents g =
  flatten g;
  (g.parents.off, g.parents.arr)

let label_codes g = g.labels

let iter_values g f =
  let pairs = Hashtbl.fold (fun u payload acc -> (u, payload) :: acc) g.values [] in
  List.iter (fun (u, payload) -> f u payload)
    (List.sort (fun (a, _) (b, _) -> Int.compare a b) pairs)

let n_values g = Hashtbl.length g.values

let add_edge g u v =
  check_range (n_nodes g) u v;
  (* [u] and [v] are validated above, so reads are unchecked on this
     hot path (loaders add edges in bulk). *)
  if g.n_deleted > 0 && Hashtbl.mem g.deleted (u, v) then begin
    (* The slot still exists in the CSR: just lift the tombstone. *)
    Hashtbl.remove g.deleted (u, v);
    g.n_deleted <- g.n_deleted - 1;
    g.n_edges <- g.n_edges + 1
  end
  else begin
    let lo = Int_vec.unsafe_get g.children.off u in
    let hi = Int_vec.unsafe_get g.children.off (u + 1) in
    let in_csr =
      (* Hand-inlined short scan: ocamlopt does not inline functions
         containing loops across modules, and this is the hottest loop
         in bulk loading. *)
      if hi - lo <= 16 then begin
        let arr = g.children.arr in
        let i = ref lo in
        while !i < hi && Int_vec.unsafe_get arr !i < v do
          incr i
        done;
        !i < hi && Int_vec.unsafe_get arr !i = v
      end
      else Int_vec.mem_range g.children.arr ~lo ~hi v
    in
    if
      not
        (in_csr || (g.n_extra > 0 && List.memq v (Array.unsafe_get g.extra_children u)))
    then begin
      Array.unsafe_set g.extra_children u (v :: Array.unsafe_get g.extra_children u);
      Array.unsafe_set g.extra_parents v (u :: Array.unsafe_get g.extra_parents v);
      g.n_extra <- g.n_extra + 1;
      g.n_edges <- g.n_edges + 1;
      if g.n_extra + g.n_deleted > g.rebuild_at then rebuild_csr g
    end
  end

let remove_once x l =
  let rec go acc = function
    | [] -> None
    | y :: rest -> if y = x then Some (List.rev_append acc rest) else go (y :: acc) rest
  in
  go [] l

let remove_edge g u v =
  check_range (n_nodes g) u v;
  if not (has_edge g u v) then
    invalid_arg (Printf.sprintf "Data_graph.remove_edge: no edge (%d, %d)" u v);
  if in_csr g u v then begin
    Hashtbl.replace g.deleted (u, v) ();
    g.n_deleted <- g.n_deleted + 1
  end
  else begin
    (match remove_once v g.extra_children.(u) with
    | Some rest -> g.extra_children.(u) <- rest
    | None -> assert false);
    (match remove_once u g.extra_parents.(v) with
    | Some rest -> g.extra_parents.(v) <- rest
    | None -> assert false);
    g.n_extra <- g.n_extra - 1
  end;
  g.n_edges <- g.n_edges - 1;
  maybe_rebuild g

let copy g =
  {
    pool = Label.Pool.copy g.pool;
    labels = Int_vec.copy g.labels;
    children = { off = Int_vec.copy g.children.off; arr = Int_vec.copy g.children.arr };
    parents = { off = Int_vec.copy g.parents.off; arr = Int_vec.copy g.parents.arr };
    values = Hashtbl.copy g.values;
    n_edges = g.n_edges;
    extra_children = Array.copy g.extra_children;
    extra_parents = Array.copy g.extra_parents;
    deleted = Hashtbl.copy g.deleted;
    n_extra = g.n_extra;
    n_deleted = g.n_deleted;
    rebuild_at = g.rebuild_at;
    by_label = None;
  }

let graft g h =
  let pool = Label.Pool.copy g.pool in
  let ng = n_nodes g and nh = n_nodes h in
  (* h's root (node 0) is dropped; its other nodes shift by offset - 1. *)
  let offset = ng in
  let remap u = u - 1 + offset in
  let labels = Array.make (ng + nh - 1) (Label.of_int 0) in
  for u = 0 to ng - 1 do
    labels.(u) <- label g u
  done;
  for u = 1 to nh - 1 do
    labels.(remap u) <- Label.Pool.intern pool (label_name h u)
  done;
  let edges = ref [] in
  iter_edges g (fun u v -> edges := (u, v) :: !edges);
  iter_edges h (fun u v ->
      let u' = if u = 0 then root g else remap u
      and v' = if v = 0 then root g else remap v in
      edges := (u', v') :: !edges);
  let values = ref [] in
  Hashtbl.iter (fun u payload -> values := (u, payload) :: !values) g.values;
  Hashtbl.iter
    (fun u payload -> if u > 0 then values := (remap u, payload) :: !values)
    h.values;
  (make ~values:!values ~pool ~labels ~edges:!edges (), offset)

type stats = {
  nodes : int;
  edges : int;
  labels : int;
  max_out_degree : int;
  max_in_degree : int;
  max_depth : int;
  unreachable : int;
}

let stats g =
  let n = n_nodes g in
  let depth = Array.make n (-1) in
  depth.(root g) <- 0;
  let queue = Queue.create () in
  Queue.add (root g) queue;
  let max_depth = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    if depth.(u) > !max_depth then max_depth := depth.(u);
    iter_children g u (fun v ->
        if depth.(v) < 0 then begin
          depth.(v) <- depth.(u) + 1;
          Queue.add v queue
        end)
  done;
  let unreachable = ref 0 in
  Array.iter (fun d -> if d < 0 then incr unreachable) depth;
  let max_out = ref 0 and max_in = ref 0 in
  iter_nodes g (fun u ->
      if out_degree g u > !max_out then max_out := out_degree g u;
      if in_degree g u > !max_in then max_in := in_degree g u);
  {
    nodes = n;
    edges = n_edges g;
    labels = Label.Pool.count g.pool;
    max_out_degree = !max_out;
    max_in_degree = !max_in;
    max_depth = !max_depth;
    unreachable = !unreachable;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "nodes=%d edges=%d labels=%d max_out=%d max_in=%d max_depth=%d unreachable=%d"
    s.nodes s.edges s.labels s.max_out_degree s.max_in_degree s.max_depth
    s.unreachable
