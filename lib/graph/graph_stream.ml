(* Streaming graph construction: the Builder API, but edges go
   straight into two external sorters ((u, v) for the child direction,
   (v, u) for the parent direction) instead of an in-RAM list, and
   [finish] writes a Container directly — the adjacency is never
   materialized.  RAM use is O(n) for the label codes plus the
   sorters' fixed buffers; the O(m) edge data lives in spill runs.

   Both directions are fed up front so one generator pass suffices;
   [finish] merge-dedups each direction and streams it into its
   Container section while accumulating the offsets (O(n) RAM) to
   write next.  Because the sorted, deduplicated runs are exactly what
   [Data_graph.make] produces and the Container section encoders are
   shared, streaming a generator and saving its materialized graph
   yield byte-identical files. *)

type t = {
  pool : Label.Pool.t;
  path : string;
  mutable labels : Int_vec.t;  (* node -> label code *)
  mutable count : int;
  children : Ext_sort.Pairs.t;
  parents : Ext_sort.Pairs.t;
  values : (int, string) Hashtbl.t;
  mutable finished : bool;
}

let create ?(root_label = Label.root_name) ?mem_budget ?tmp_dir ~path () =
  let pool = Label.Pool.create () in
  let root = Label.Pool.intern pool root_label in
  let labels = Int_vec.create 1024 in
  Int_vec.set labels 0 (Label.to_int root);
  {
    pool;
    path;
    labels;
    count = 1;
    children = Ext_sort.Pairs.create ?mem_budget ?tmp_dir ();
    parents = Ext_sort.Pairs.create ?mem_budget ?tmp_dir ();
    values = Hashtbl.create 1024;
    finished = false;
  }

let root _ = 0
let n_nodes t = t.count
let pool t = t.pool

let add_node t name =
  let l = Label.Pool.intern t.pool name in
  if t.count >= Int_vec.length t.labels then begin
    let bigger = Int_vec.create (2 * Int_vec.length t.labels) in
    Int_vec.blit ~src:t.labels ~src_pos:0 ~dst:bigger ~dst_pos:0 ~len:t.count;
    t.labels <- bigger
  end;
  let id = t.count in
  Int_vec.set t.labels id (Label.to_int l);
  t.count <- id + 1;
  id

let add_edge t u v =
  Ext_sort.Pairs.add t.children u v;
  Ext_sort.Pairs.add t.parents v u

let add_child t ~parent name =
  let id = add_node t name in
  add_edge t parent id;
  id

(* First payload wins, matching the builder path: [Builder.set_value]
   prepends and [Data_graph.make] folds newest-first with replace, so
   the oldest entry survives there too. *)
let set_value t node payload =
  if not (Hashtbl.mem t.values node) then Hashtbl.add t.values node payload

let add_value ?text t ~parent =
  let id = add_child t ~parent Label.value_name in
  (match text with Some payload -> set_value t id payload | None -> ());
  id

(* Merge one direction into its neighbor section, dropping duplicate
   pairs, accumulating degree counts, and validating ranges (edges may
   legitimately reference nodes created after them, so range checks
   can only happen here).  Returns the edge count. *)
let stream_direction w tag sorter n deg =
  Container.Writer.begin_section w tag;
  let last_a = ref (-1) and last_b = ref (-1) and m = ref 0 in
  Ext_sort.Pairs.iter_merged sorter (fun a b ->
      if a < 0 || a >= n || b < 0 || b >= n then
        invalid_arg (Printf.sprintf "Graph_stream: edge (%d, %d) out of range" a b);
      if not (a = !last_a && b = !last_b) then begin
        last_a := a;
        last_b := b;
        Container.Writer.write_int w b;
        Int_vec.set deg (a + 1) (Int_vec.get deg (a + 1) + 1);
        incr m
      end);
  Container.Writer.end_section w;
  (* Prefix-sum the degree counts into offsets. *)
  for i = 1 to n do
    Int_vec.set deg i (Int_vec.get deg i + Int_vec.get deg (i - 1))
  done;
  !m

let finish t =
  if t.finished then invalid_arg "Graph_stream.finish: already finished";
  t.finished <- true;
  let n = t.count in
  let values =
    List.sort
      (fun (a, _) (b, _) -> Int.compare a b)
      (Hashtbl.fold (fun u payload acc -> (u, payload) :: acc) t.values [])
  in
  let w = Container.Writer.create t.path ~kind:Graph ~n_sections:Container.graph_n_sections in
  (try
     Container.write_pool w t.pool;
     Container.Writer.int_section w "labels" (Int_vec.sub t.labels ~pos:0 ~len:n);
     let cdeg = Int_vec.zeros (n + 1) in
     let m = stream_direction w "carr" t.children n cdeg in
     Container.Writer.int_section w "coff" cdeg;
     let pdeg = Int_vec.zeros (n + 1) in
     let m' = stream_direction w "parr" t.parents n pdeg in
     Container.Writer.int_section w "poff" pdeg;
     if m <> m' then invalid_arg "Graph_stream: direction edge counts disagree";
     Container.write_values w values;
     Container.write_meta w [ n; m; List.length values ]
   with e ->
     Container.Writer.abort w;
     Ext_sort.Pairs.close t.children;
     Ext_sort.Pairs.close t.parents;
     raise e);
  Container.Writer.finish w

let abort t =
  if not t.finished then begin
    t.finished <- true;
    Ext_sort.Pairs.close t.children;
    Ext_sort.Pairs.close t.parents
  end
