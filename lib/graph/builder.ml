type t = {
  pool : Label.Pool.t;
  mutable labels : Label.t array;
  mutable count : int;
  mutable edges : (int * int) list;
  mutable values : (int * string) list;
}

let create_with_root root_label =
  let pool = Label.Pool.create () in
  let root = Label.Pool.intern pool root_label in
  { pool; labels = Array.make 1024 root; count = 1; edges = []; values = [] }

let create () = create_with_root Label.root_name
let root _ = 0
let n_nodes b = b.count
let pool b = b.pool

let add_node b name =
  let l = Label.Pool.intern b.pool name in
  if b.count >= Array.length b.labels then begin
    let labels = Array.make (2 * Array.length b.labels) l in
    Array.blit b.labels 0 labels 0 b.count;
    b.labels <- labels
  end;
  let id = b.count in
  b.labels.(id) <- l;
  b.count <- id + 1;
  id

let add_edge b u v = b.edges <- (u, v) :: b.edges

let add_child b ~parent name =
  let id = add_node b name in
  add_edge b parent id;
  id

let add_value ?text b ~parent =
  let id = add_child b ~parent Label.value_name in
  (match text with Some payload -> b.values <- (id, payload) :: b.values | None -> ());
  id

let set_value b node payload = b.values <- (node, payload) :: b.values

let build b =
  Data_graph.make ~values:b.values
    ~pool:(Label.Pool.copy b.pool)
    ~labels:(Array.sub b.labels 0 b.count)
    ~edges:b.edges ()
