(* The on-disk container: a versioned header, a section table, and
   page-aligned sections, so a graph (or a built index) opens in O(1)
   by memory-mapping its flat int sections instead of parsing text.

   Layout (all fixed-width fields little-endian):

     offset  0   magic            8 bytes  "dkxcntr1" (name + format version)
     offset  8   kind             u32      1 = graph, 2 = index
     offset 12   word_bytes       u32      8 (native int width)
     offset 16   endian marker    u32      0x01020304 as written by this host
     offset 20   n_sections       u32
     offset 24   file_length      u64      total bytes, must equal actual size
     offset 32   header CRC-32    u32      over bytes [0, 40 + 32 n) with this
                                           field zeroed
     offset 36   pad              u32
     offset 40   section table    n × 32 bytes
     ...         sections         each starting on a 4096 boundary

   Section-table entry: tag (8 bytes, NUL-padded), offset u64,
   length u64 (unpadded bytes), CRC-32 u32, pad u32.

   Opening validates the header, the header/table CRC, and every
   section extent against the real file length — O(1) work that
   catches truncation and header corruption.  Section bodies carry
   their own CRCs, checked only on demand ([~verify]), because a full
   scan of a multi-GB file defeats the point of mapping it.

   Int sections are written as the little-endian native words of the
   OCaml ints, which is exactly the in-memory representation of a
   bigarray of kind [int] on a little-endian 64-bit host — so a
   mapped section IS the Int_vec, no translation.  The 4096 alignment
   matches the mmap offset granularity on every platform we target. *)

type kind = Graph | Index

type error =
  | Bad_magic
  | Bad_kind of { expected : int; got : int }
  | Bad_word_size of int
  | Bad_endianness
  | Truncated of string
  | Crc_mismatch of string
  | Missing_section of string
  | Malformed of string

exception Error of error

let pp_kind ppf = function
  | Graph -> Format.pp_print_string ppf "graph"
  | Index -> Format.pp_print_string ppf "index"

let pp_error ppf = function
  | Bad_magic -> Format.pp_print_string ppf "not a dkindex container"
  | Bad_kind { expected; got } ->
    Format.fprintf ppf "container kind %d where %d expected" got expected
  | Bad_word_size w -> Format.fprintf ppf "container word size %d (want 8)" w
  | Bad_endianness -> Format.pp_print_string ppf "container byte order mismatch"
  | Truncated what -> Format.fprintf ppf "container truncated (%s)" what
  | Crc_mismatch what -> Format.fprintf ppf "container CRC mismatch (%s)" what
  | Missing_section tag -> Format.fprintf ppf "container section %S missing" tag
  | Malformed what -> Format.fprintf ppf "malformed container (%s)" what

let error e = raise (Error e)
let magic = "dkxcntr1"
let endian_marker = 0x01020304
let page = 4096
let header_prefix = 40
let entry_bytes = 32
let kind_code = function Graph -> 1 | Index -> 2

let align_page n = (n + page - 1) / page * page

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE reflected, poly 0xEDB88320) — deliberately local: the
   graph library sits below the server's WAL and depends on nothing. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32_update crc buf off len =
  let table = Lazy.force crc_table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = off to off + len - 1 do
    c :=
      Array.unsafe_get table ((!c lxor Char.code (Bytes.unsafe_get buf i)) land 0xFF)
      lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Writer *)

module Writer = struct
  type section = { tag : string; start : int; mutable len : int; mutable crc : int }

  type entry = { e_tag : string; e_off : int; e_len : int; e_crc : int }

  type t = {
    fd : Unix.file_descr;
    tmp : string;
    path : string;
    kind : kind;
    header_size : int;
    n_sections : int;
    buf : Bytes.t;
    mutable fill : int;
    mutable pos : int;  (* file offset of buf.[0] *)
    mutable cur : section option;
    mutable entries : entry list;  (* reversed *)
    mutable closed : bool;
  }

  let buf_cap = 1 lsl 18

  let create path ~kind ~n_sections =
    let header_size = align_page (header_prefix + (n_sections * entry_bytes)) in
    let tmp = path ^ ".tmp" in
    let fd = Unix.openfile tmp [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
    ignore (Unix.lseek fd header_size SEEK_SET);
    {
      fd;
      tmp;
      path;
      kind;
      header_size;
      n_sections;
      buf = Bytes.create buf_cap;
      fill = 0;
      pos = header_size;
      cur = None;
      entries = [];
      closed = false;
    }

  let really_write fd buf off len =
    let w = ref off and rem = ref len in
    while !rem > 0 do
      let k = Unix.write fd buf !w !rem in
      w := !w + k;
      rem := !rem - k
    done

  let flush w =
    if w.fill > 0 then begin
      (match w.cur with
      | Some s ->
        s.crc <- crc32_update s.crc w.buf 0 w.fill;
        s.len <- s.len + w.fill
      | None -> ());
      really_write w.fd w.buf 0 w.fill;
      w.pos <- w.pos + w.fill;
      w.fill <- 0
    end

  let write_raw w src off len =
    let off = ref off and rem = ref len in
    while !rem > 0 do
      if w.fill = buf_cap then flush w;
      let k = min !rem (buf_cap - w.fill) in
      Bytes.blit src !off w.buf w.fill k;
      w.fill <- w.fill + k;
      off := !off + k;
      rem := !rem - k
    done

  let write_int w x =
    if w.fill + 8 > buf_cap then flush w;
    Bytes.set_int64_le w.buf w.fill (Int64.of_int x);
    w.fill <- w.fill + 8

  let write_vec w v =
    for i = 0 to Int_vec.length v - 1 do
      write_int w (Int_vec.unsafe_get v i)
    done

  let write_string w s = write_raw w (Bytes.unsafe_of_string s) 0 (String.length s)

  let begin_section w tag =
    if w.cur <> None then invalid_arg "Container.Writer: section already open";
    if String.length tag > 8 then invalid_arg "Container.Writer: tag too long";
    flush w;
    w.cur <- Some { tag; start = w.pos; len = 0; crc = 0 }

  let end_section w =
    match w.cur with
    | None -> invalid_arg "Container.Writer: no open section"
    | Some s ->
      flush w;
      w.cur <- None;
      w.entries <-
        { e_tag = s.tag; e_off = s.start; e_len = s.len; e_crc = s.crc } :: w.entries;
      (* Pad to the next page so the following section is mappable. *)
      let pad = (page - (w.pos mod page)) mod page in
      if pad > 0 then begin
        Bytes.fill w.buf 0 pad '\000';
        w.fill <- pad;
        flush w
      end

  let int_section w tag v =
    begin_section w tag;
    write_vec w v;
    end_section w

  let set_u32 b off x = Bytes.set_int32_le b off (Int32.of_int x)

  let header_bytes w ~file_length =
    let entries = List.rev w.entries in
    let b = Bytes.make w.header_size '\000' in
    Bytes.blit_string magic 0 b 0 8;
    set_u32 b 8 (kind_code w.kind);
    set_u32 b 12 8;
    set_u32 b 16 endian_marker;
    set_u32 b 20 w.n_sections;
    Bytes.set_int64_le b 24 (Int64.of_int file_length);
    List.iteri
      (fun i e ->
        let off = header_prefix + (i * entry_bytes) in
        Bytes.blit_string e.e_tag 0 b off (String.length e.e_tag);
        Bytes.set_int64_le b (off + 8) (Int64.of_int e.e_off);
        Bytes.set_int64_le b (off + 16) (Int64.of_int e.e_len);
        set_u32 b (off + 24) e.e_crc)
      entries;
    let crc =
      crc32_update 0 b 0 (header_prefix + (w.n_sections * entry_bytes))
    in
    set_u32 b 32 crc;
    b

  let finish w =
    if w.closed then invalid_arg "Container.Writer: already finished";
    if w.cur <> None then invalid_arg "Container.Writer: unfinished section";
    flush w;
    let n = List.length w.entries in
    if n <> w.n_sections then
      invalid_arg
        (Printf.sprintf "Container.Writer: %d sections written, %d declared" n
           w.n_sections);
    let b = header_bytes w ~file_length:w.pos in
    ignore (Unix.lseek w.fd 0 SEEK_SET);
    really_write w.fd b 0 w.header_size;
    Unix.fsync w.fd;
    Unix.close w.fd;
    w.closed <- true;
    Unix.rename w.tmp w.path

  let abort w =
    if not w.closed then begin
      (try Unix.close w.fd with Unix.Unix_error _ -> ());
      (try Unix.unlink w.tmp with Unix.Unix_error _ -> ());
      w.closed <- true
    end
end

(* ------------------------------------------------------------------ *)
(* Shared section encoders — one code path for the materialized save
   and the streaming builder, so equal content means equal bytes. *)

let graph_n_sections = 8

let write_pool w pool =
  Writer.begin_section w "pool";
  let n = Label.Pool.count pool in
  Writer.write_int w n;
  for code = 0 to n - 1 do
    let name = Label.Pool.name pool (Label.of_int code) in
    Writer.write_int w (String.length name);
    Writer.write_string w name
  done;
  Writer.end_section w

let write_values w values =
  (* [values] sorted by node id, each node at most once. *)
  Writer.begin_section w "values";
  Writer.write_int w (List.length values);
  List.iter
    (fun (u, payload) ->
      Writer.write_int w u;
      Writer.write_int w (String.length payload);
      Writer.write_string w payload)
    values;
  Writer.end_section w

let write_meta w ints =
  Writer.begin_section w "meta";
  List.iter (Writer.write_int w) ints;
  Writer.end_section w

let write_graph_sections w g =
  let coff, carr = Data_graph.csr_children g in
  let poff, parr = Data_graph.csr_parents g in
  let values = ref [] in
  Data_graph.iter_values g (fun u payload -> values := (u, payload) :: !values);
  let values = List.rev !values in
  write_pool w (Data_graph.pool g);
  Writer.int_section w "labels" (Data_graph.label_codes g);
  Writer.int_section w "carr" carr;
  Writer.int_section w "coff" coff;
  Writer.int_section w "parr" parr;
  Writer.int_section w "poff" poff;
  write_values w values;
  write_meta w [ Data_graph.n_nodes g; Data_graph.n_edges g; List.length values ]

let save_graph g path =
  let w = Writer.create path ~kind:Graph ~n_sections:graph_n_sections in
  (try write_graph_sections w g
   with e ->
     Writer.abort w;
     raise e);
  Writer.finish w

(* ------------------------------------------------------------------ *)
(* Reader *)

type section = { s_off : int; s_len : int; s_crc : int }

type reader = { r_sections : (string * section) list }

let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF
let get_u64 b off = Int64.to_int (Bytes.get_int64_le b off)

(* Pluggable read primitive: dkindex_server's fault-injection tests
   redirect this at [Faults.read] (this library cannot depend on that
   one), so the CRC checks below can be exercised against short reads,
   EINTR storms, and flipped bits.  Production never touches it. *)
let read_injector : (Unix.file_descr -> bytes -> int -> int -> int) ref = ref Unix.read

let really_read fd buf off len =
  let r = ref off and rem = ref len in
  while !rem > 0 do
    match !read_injector fd buf !r !rem with
    | 0 -> error (Truncated "unexpected end of file")
    | k ->
      r := !r + k;
      rem := !rem - k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let tag_of_entry b off =
  let len = ref 0 in
  while !len < 8 && Bytes.get b (off + !len) <> '\000' do
    incr len
  done;
  Bytes.sub_string b off !len

(* Validate everything O(1)-checkable: magic, kind, word size, byte
   order, header/table CRC, declared vs real file length, and every
   section extent.  Returns the parsed section table. *)
let read_header fd ~kind =
  let file_len = (Unix.fstat fd).st_size in
  if file_len < header_prefix then error (Truncated "header");
  let prefix = Bytes.create header_prefix in
  really_read fd prefix 0 header_prefix;
  if Bytes.sub_string prefix 0 8 <> magic then error Bad_magic;
  let k = get_u32 prefix 8 in
  if k <> kind_code kind then error (Bad_kind { expected = kind_code kind; got = k });
  let word = get_u32 prefix 12 in
  if word <> 8 then error (Bad_word_size word);
  if get_u32 prefix 16 <> endian_marker then error Bad_endianness;
  let n_sections = get_u32 prefix 20 in
  if n_sections > 1024 then error (Malformed "section count");
  let header_len = header_prefix + (n_sections * entry_bytes) in
  if file_len < header_len then error (Truncated "section table");
  if get_u64 prefix 24 <> file_len then error (Truncated "file length");
  let header = Bytes.create header_len in
  Bytes.blit prefix 0 header 0 header_prefix;
  really_read fd header header_prefix (header_len - header_prefix);
  let declared_crc = get_u32 header 32 in
  Bytes.set_int32_le header 32 0l;
  if crc32_update 0 header 0 header_len <> declared_crc then
    error (Crc_mismatch "header");
  List.init n_sections (fun i ->
      let off = header_prefix + (i * entry_bytes) in
      let tag = tag_of_entry header off in
      let s_off = get_u64 header (off + 8) in
      let s_len = get_u64 header (off + 16) in
      let s_crc = get_u32 header (off + 24) in
      if s_off < header_len || s_len < 0 || s_off + s_len > file_len then
        error (Truncated tag);
      if s_off mod page <> 0 then error (Malformed (tag ^ " alignment"));
      (tag, { s_off; s_len; s_crc }))

let find_section r tag =
  match List.assoc_opt tag r.r_sections with
  | Some s -> s
  | None -> error (Missing_section tag)

let verify_section fd s tag =
  ignore (Unix.lseek fd s.s_off SEEK_SET);
  let chunk = Bytes.create (1 lsl 18) in
  let crc = ref 0 and rem = ref s.s_len in
  while !rem > 0 do
    let k = min !rem (Bytes.length chunk) in
    really_read fd chunk 0 k;
    crc := crc32_update !crc chunk 0 k;
    rem := !rem - k
  done;
  if !crc <> s.s_crc then error (Crc_mismatch tag)

let map_int_section fd s tag : Int_vec.t =
  if s.s_len mod 8 <> 0 then error (Malformed (tag ^ " length"));
  let n = s.s_len / 8 in
  if n = 0 then Int_vec.create 0
  else
    Bigarray.array1_of_genarray
      (Unix.map_file fd ~pos:(Int64.of_int s.s_off) Bigarray.int Bigarray.c_layout
         false [| n |])

let read_bytes_section fd s =
  let b = Bytes.create s.s_len in
  ignore (Unix.lseek fd s.s_off SEEK_SET);
  really_read fd b 0 s.s_len;
  b

(* Cursor-style decoding of the byte sections (pool, values). *)
let decode_pool b =
  let pos = ref 0 in
  let len = Bytes.length b in
  let next_int () =
    if !pos + 8 > len then error (Malformed "pool");
    let x = get_u64 b !pos in
    pos := !pos + 8;
    x
  in
  let n = next_int () in
  if n < 1 then error (Malformed "pool count");
  let pool = Label.Pool.create () in
  for code = 0 to n - 1 do
    let slen = next_int () in
    if slen < 0 || !pos + slen > len then error (Malformed "pool name");
    let name = Bytes.sub_string b !pos slen in
    pos := !pos + slen;
    if Label.to_int (Label.Pool.intern pool name) <> code then
      error (Malformed "pool order")
  done;
  pool

let decode_values b =
  let pos = ref 0 in
  let len = Bytes.length b in
  let next_int () =
    if !pos + 8 > len then error (Malformed "values");
    let x = get_u64 b !pos in
    pos := !pos + 8;
    x
  in
  let n = next_int () in
  if n < 0 then error (Malformed "values count");
  List.init n (fun _ ->
      let u = next_int () in
      let slen = next_int () in
      if slen < 0 || !pos + slen > len then error (Malformed "value payload");
      let payload = Bytes.sub_string b !pos slen in
      pos := !pos + slen;
      (u, payload))

let with_reader path ~kind f =
  let fd =
    try Unix.openfile path [ O_RDONLY ] 0
    with Unix.Unix_error (e, _, _) ->
      error (Truncated (path ^ ": " ^ Unix.error_message e))
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let sections = read_header fd ~kind in
      f fd { r_sections = sections })

(* The graph sections, shared by [open_graph] and the index reader. *)
let graph_of_reader fd r =
  let sec tag = find_section r tag in
  let pool = decode_pool (read_bytes_section fd (sec "pool")) in
  let labels = map_int_section fd (sec "labels") "labels" in
  let carr = map_int_section fd (sec "carr") "carr" in
  let coff = map_int_section fd (sec "coff") "coff" in
  let parr = map_int_section fd (sec "parr") "parr" in
  let poff = map_int_section fd (sec "poff") "poff" in
  let values = decode_values (read_bytes_section fd (sec "values")) in
  let meta = map_int_section fd (sec "meta") "meta" in
  if Int_vec.length meta < 3 then error (Malformed "meta");
  let n = Int_vec.get meta 0 and m = Int_vec.get meta 1 and nv = Int_vec.get meta 2 in
  if Int_vec.length labels <> n then error (Malformed "node count");
  if
    Int_vec.length coff <> n + 1
    || Int_vec.length poff <> n + 1
    || Int_vec.length carr <> m
    || Int_vec.length parr <> m
    || (n > 0 && (Int_vec.get coff n <> m || Int_vec.get poff n <> m))
  then error (Malformed "csr shape");
  if List.length values <> nv then error (Malformed "value count");
  List.iter (fun (u, _) -> if u < 0 || u >= n then error (Malformed "value node")) values;
  try
    Data_graph.of_csr ~values ~pool ~label_codes:labels ~children:(coff, carr)
      ~parents:(poff, parr) ()
  with Invalid_argument msg -> error (Malformed msg)

let verify_all fd r = List.iter (fun (tag, s) -> verify_section fd s tag) r.r_sections

let open_graph ?(verify = false) path =
  with_reader path ~kind:Graph (fun fd r ->
      if verify then verify_all fd r;
      graph_of_reader fd r)

(* Generic access for non-graph kinds: the index serializer reads its
   extra sections through this, sharing the header validation, the
   mapping machinery and the embedded-graph decoder. *)
module Reader = struct
  type t = { fd : Unix.file_descr; r : reader }

  let with_file ?(verify = false) ~kind path f =
    with_reader path ~kind (fun fd r ->
        if verify then verify_all fd r;
        f { fd; r })

  let graph h = graph_of_reader h.fd h.r
  let int_vec h tag = map_int_section h.fd (find_section h.r tag) tag
end

let probe path =
  match Unix.openfile path [ O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> None
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let b = Bytes.create 12 in
        match really_read fd b 0 12 with
        | exception Error _ -> None
        | () ->
          if Bytes.sub_string b 0 8 <> magic then None
          else
            (match get_u32 b 8 with
            | 1 -> Some Graph
            | 2 -> Some Index
            | _ -> None))
