(** Flat [int array] utilities shared by the CSR graph core and the
    array-extent index layer: in-place range sort, binary search over
    sorted runs, and linear-time merges of sorted arrays.

    Everything here works on arrays sorted in increasing order and
    allocates only the result array (no lists, no closures captured in
    loops). *)

val sort_range : int array -> lo:int -> hi:int -> unit
(** Sort [a.(lo) .. a.(hi - 1)] in place, increasing.  Insertion sort
    below a small cutoff, median-of-three quicksort above it; O(1)
    auxiliary space. *)

val dedup_range : int array -> lo:int -> hi:int -> int
(** Compact consecutive duplicates of the sorted run
    [a.(lo) .. a.(hi - 1)] towards [lo]; returns the number of distinct
    values now occupying [a.(lo) ..]. *)

val mem_range : int array -> lo:int -> hi:int -> int -> bool
(** Search for a value in the sorted run [a.(lo) .. a.(hi - 1)]:
    linear scan on short runs, binary search otherwise.  [lo, hi) must
    be a valid range of [a] — short runs are read unchecked. *)

val of_list : int list -> int array
(** Array of the list, sorted increasing (duplicates kept). *)

val merge : int array -> int array -> int array
(** Merge two sorted arrays into a sorted array (duplicates kept). *)

val merge_many : int array list -> int array
(** Merge sorted arrays into one sorted array (duplicates kept):
    pairwise tournament, O(N log k) for N total elements across k
    arrays. *)

val to_list : int array -> int list
