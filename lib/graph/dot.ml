let to_dot ?(max_nodes = 500) g =
  let buf = Buffer.create 4096 in
  let n = min (Data_graph.n_nodes g) max_nodes in
  Buffer.add_string buf "digraph data_graph {\n  rankdir=TB;\n  node [shape=ellipse, fontsize=10];\n";
  for u = 0 to n - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s:%d\"];\n" u (Data_graph.label_name g u) u)
  done;
  for u = 0 to n - 1 do
    Data_graph.iter_children g u (fun v ->
        if v < n then Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" u v))
  done;
  if Data_graph.n_nodes g > max_nodes then
    Buffer.add_string buf
      (Printf.sprintf "  elided [shape=box, label=\"%d more nodes elided\"];\n"
         (Data_graph.n_nodes g - max_nodes));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_dot ?max_nodes path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot ?max_nodes g))
