type t = int

let to_int t = t
let of_int i = i
let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash

let root_name = "ROOT"
let value_name = "VALUE"

module Pool = struct
  type nonrec t = {
    by_name : (string, int) Hashtbl.t;
    mutable names : string array;
    mutable count : int;
  }

  let create () = { by_name = Hashtbl.create 64; names = Array.make 16 ""; count = 0 }

  let grow pool =
    let cap = Array.length pool.names in
    if pool.count >= cap then begin
      let names = Array.make (2 * cap) "" in
      Array.blit pool.names 0 names 0 cap;
      pool.names <- names
    end

  let intern pool name =
    match Hashtbl.find_opt pool.by_name name with
    | Some code -> code
    | None ->
      grow pool;
      let code = pool.count in
      pool.names.(code) <- name;
      pool.count <- code + 1;
      Hashtbl.add pool.by_name name code;
      code

  let find_opt pool name = Hashtbl.find_opt pool.by_name name

  let name pool code =
    if code < 0 || code >= pool.count then
      invalid_arg (Printf.sprintf "Label.Pool.name: unknown code %d" code)
    else pool.names.(code)

  let count pool = pool.count

  let fold f pool init =
    let acc = ref init in
    for code = 0 to pool.count - 1 do
      acc := f code pool.names.(code) !acc
    done;
    !acc

  let copy pool =
    {
      by_name = Hashtbl.copy pool.by_name;
      names = Array.copy pool.names;
      count = pool.count;
    }
end

let pp pool ppf t = Format.pp_print_string ppf (Pool.name pool t)
