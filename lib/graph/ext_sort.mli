(** External merge sort for the out-of-core build paths.

    Items buffer into a flat {!Int_vec}; when the buffer reaches the
    memory budget a sorted run is spilled to an unlinked temp file
    (crash-safe — the descriptor is the only reference), and
    [iter_merged] streams the globally sorted sequence through a
    k-way merge of the runs plus the in-RAM tail.  A sorter is
    single-use: after [iter_merged] (or [close]) it cannot accept
    more items. *)

module Pairs : sig
  (** (a, b) int pairs, sorted by [a] then [b]; duplicates are kept
      (callers dedup in the merged stream). *)

  type t

  val create : ?mem_budget:int -> ?tmp_dir:string -> unit -> t
  (** [mem_budget] is in words (two per pair); default 4M words
      (32 MiB). *)

  val add : t -> int -> int -> unit
  val total : t -> int
  val iter_merged : t -> (int -> int -> unit) -> unit
  val close : t -> unit
end

module Records : sig
  (** Variable-length int records in lexicographic order
      (element-wise compare; a strict prefix sorts first). *)

  type t

  val create : ?mem_budget:int -> ?tmp_dir:string -> unit -> t

  val add : t -> int array -> len:int -> unit
  (** Copies words [0, len) of the scratch array into the buffer.
      @raise Invalid_argument if a single record exceeds the budget. *)

  val total : t -> int

  val iter_merged : t -> (int array -> int -> unit) -> unit
  (** The callback receives a scratch buffer and the record length;
      the buffer is reused between calls — copy what must survive. *)

  val close : t -> unit
end
