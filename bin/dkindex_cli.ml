(* dkindex: command-line driver.

   Subcommands:
     generate   write a synthetic XMark/NASA/random dataset (XML or graph)
     stats      print statistics of a dataset
     build      build an index and print its size / similarity profile
     query      evaluate a path expression through an index
     workload   generate a query workload and show the mined requirements
     dot        export a dataset to Graphviz *)

open Cmdliner
open Dkindex_graph
open Dkindex_core
module Xml_parser = Dkindex_xml.Xml_parser
module Xml_to_graph = Dkindex_xml.Xml_to_graph
module Xml_writer = Dkindex_xml.Xml_writer

(* ------------------------------------------------------------------ *)
(* Shared argument handling                                            *)

let comma_list s = String.split_on_char ',' s |> List.filter (fun x -> x <> "")

let load_graph ~input ~id_attrs ~idref_attrs =
  match Container.probe input with
  | Some Container.Graph -> Container.open_graph input
  | Some Container.Index ->
    failwith (input ^ " is an index container; pass it to `query --load-index`")
  | None ->
  if Filename.check_suffix input ".xml" then begin
    let doc = Xml_parser.parse_file input in
    let config =
      {
        Xml_to_graph.id_attrs = (if id_attrs = [] then [ "id" ] else id_attrs);
        idref_attrs = (if idref_attrs = [] then [ "idref"; "ref" ] else idref_attrs);
      }
    in
    let result = Xml_to_graph.convert ~config doc in
    if result.Xml_to_graph.unresolved_refs <> [] then
      Printf.eprintf "warning: %d unresolved references\n"
        (List.length result.Xml_to_graph.unresolved_refs);
    result.Xml_to_graph.graph
  end
  else Serial.load input

let input_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Input dataset (.xml or .graph)")

let id_attrs_arg =
  Arg.(
    value & opt string "id"
    & info [ "id-attrs" ] ~docv:"NAMES" ~doc:"Comma-separated ID attribute names")

let idref_attrs_arg =
  Arg.(
    value & opt string "idref,ref"
    & info [ "idref-attrs" ] ~docv:"NAMES" ~doc:"Comma-separated IDREF attribute names")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed")

let graph_term =
  let make input id_attrs idref_attrs =
    load_graph ~input ~id_attrs:(comma_list id_attrs) ~idref_attrs:(comma_list idref_attrs)
  in
  Term.(const make $ input_arg $ id_attrs_arg $ idref_attrs_arg)

(* ------------------------------------------------------------------ *)
(* generate                                                            *)

let generate dataset scale seed output stream =
  let write_doc config doc =
    if Filename.check_suffix output ".xml" then Xml_writer.write_file output doc
    else Serial.save output (Xml_to_graph.graph_of_doc ~config doc)
  in
  (if stream then
     (* Streamed generation: edges go through an external sorter into a
        container file; peak memory is one XML subtree, independent of
        scale.  Byte-identical to materializing and saving. *)
     match dataset with
     | "xmark" -> ignore (Dkindex_datagen.Xmark.stream ~seed ~scale ~path:output ())
     | "nasa" -> ignore (Dkindex_datagen.Nasa.stream ~seed ~scale ~path:output ())
     | "random" ->
       Dkindex_datagen.Random_graph.stream ~seed ~nodes:(scale * 100) ~n_labels:12
         ~extra_edges:(scale * 10) ~path:output ()
     | "treebank" -> failwith "treebank has no streaming generator (xmark | nasa | random)"
     | other ->
       failwith (Printf.sprintf "unknown dataset %S (xmark | nasa | random)" other)
   else
     match dataset with
     | "xmark" -> write_doc Dkindex_datagen.Xmark.config (Dkindex_datagen.Xmark.doc ~seed ~scale ())
     | "nasa" -> write_doc Dkindex_datagen.Nasa.config (Dkindex_datagen.Nasa.doc ~seed ~scale ())
     | "treebank" ->
       write_doc Dkindex_datagen.Treebank.config (Dkindex_datagen.Treebank.doc ~seed ~scale ())
     | "random" ->
       if Filename.check_suffix output ".xml" then
         failwith "random graphs are not XML documents; use a .graph output"
       else
         Serial.save output
           (Dkindex_datagen.Random_graph.graph ~seed ~nodes:(scale * 100) ~n_labels:12
              ~extra_edges:(scale * 10) ())
     | other ->
       failwith (Printf.sprintf "unknown dataset %S (xmark | nasa | treebank | random)" other));
  Printf.printf "wrote %s\n" output

let generate_cmds =
  let dataset =
    Arg.(
      value & opt string "xmark"
      & info [ "dataset" ] ~docv:"NAME" ~doc:"xmark | nasa | treebank | random")
  in
  let scale =
    Arg.(value & opt int 100 & info [ "scale" ] ~docv:"N" ~doc:"Dataset scale")
  in
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output (.xml or .graph)")
  in
  let stream =
    Arg.(
      value & flag
      & info [ "stream" ]
          ~doc:
            "Stream edges straight into a binary container file without \
             materializing the dataset in memory (xmark | nasa | random)")
  in
  let term = Term.(const generate $ dataset $ scale $ seed_arg $ output $ stream) in
  ( Cmd.v (Cmd.info "generate" ~doc:"Generate a synthetic dataset") term,
    Cmd.v (Cmd.info "datagen" ~doc:"Alias of generate") term )

(* ------------------------------------------------------------------ *)
(* stats                                                               *)

let stats g top =
  Format.printf "%a@." Data_graph.pp_stats (Data_graph.stats g);
  Format.printf "top labels by population:@.";
  List.iteri
    (fun i (name, count) ->
      if i < top then Format.printf "  %-28s %d@." name count)
    (Traversal.label_counts g)

let stats_cmd =
  let top = Arg.(value & opt int 15 & info [ "top" ] ~docv:"N" ~doc:"Labels to list") in
  Cmd.v (Cmd.info "stats" ~doc:"Print dataset statistics") Term.(const stats $ graph_term $ top)

(* ------------------------------------------------------------------ *)
(* index construction shared by build/query                            *)

let make_index ?(mode = `Auto) g kind k workload_size seed =
  match kind with
  | "label-split" | "a0" -> Label_split.build g
  | "ak" -> A_k_index.build ~mode g ~k
  | "1-index" | "one" -> One_index.build ~mode g
  | "fb" -> Fb_index.build g
  | "dk" ->
    let queries = Dkindex_workload.Query_gen.generate ~seed ~count:workload_size g in
    let reqs = Dkindex_workload.Miner.mine g queries in
    Dk_index.build ~mode g ~reqs
  | other ->
    failwith (Printf.sprintf "unknown index %S (label-split | ak | 1-index | fb | dk)" other)

let index_kind_arg =
  Arg.(
    value & opt string "dk"
    & info [ "index" ] ~docv:"KIND" ~doc:"label-split | ak | 1-index | fb | dk")

let k_arg = Arg.(value & opt int 2 & info [ "k" ] ~docv:"K" ~doc:"k for the A(k)-index")

let workload_arg =
  Arg.(
    value & opt int 100
    & info [ "workload-queries" ] ~docv:"N" ~doc:"Workload size used to tune the D(k)-index")

let build g kind k workload_size seed save out_of_core max_heap_mb =
  let mode = if out_of_core then `External else `Auto in
  let t0 = Unix.gettimeofday () in
  let idx = make_index ~mode g kind k workload_size seed in
  let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  Printf.printf "%s built in %.1f ms\n" kind ms;
  (match save with
  | Some path ->
    if Filename.check_suffix path ".dkc" then Index_serial.save_container path idx
    else Index_serial.save path idx;
    Printf.printf "saved to %s\n" path
  | None -> ());
  Format.printf "%a@?" Index_stats.pp (Index_stats.compute idx);
  let heap_bytes = Gc.((quick_stat ()).top_heap_words) * (Sys.word_size / 8) in
  Printf.printf "peak OCaml heap: %.1f MiB\n" (float_of_int heap_bytes /. 1048576.0);
  match max_heap_mb with
  | Some cap when heap_bytes > cap * 1024 * 1024 ->
    Printf.eprintf "error: peak heap %d bytes exceeds --max-heap-mb %d\n" heap_bytes cap;
    exit 1
  | _ -> ()

let build_cmd =
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE"
          ~doc:
            "Persist the index for later `query --load-index` (a .dkc suffix \
             selects the binary container format)")
  in
  let out_of_core =
    Arg.(
      value & flag
      & info [ "out-of-core" ]
          ~doc:
            "Force the external-memory refinement path (sort/scan passes over \
             temp files) regardless of graph size")
  in
  let max_heap_mb =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-heap-mb" ] ~docv:"MB"
          ~doc:"Fail (exit 1) if the peak OCaml heap exceeds this many MiB")
  in
  Cmd.v
    (Cmd.info "build" ~doc:"Build an index and print its profile")
    Term.(
      const build $ graph_term $ index_kind_arg $ k_arg $ workload_arg $ seed_arg $ save
      $ out_of_core $ max_heap_mb)

(* ------------------------------------------------------------------ *)
(* query                                                               *)

let eval_one idx kind expr_str =
  (* A leading '/' selects the tree-pattern language; anything else is
     a regular path expression. *)
  if String.length expr_str > 0 && Char.equal expr_str.[0] '/' then
    let pattern = Dkindex_pathexpr.Tree_pattern.parse expr_str in
    Query_eval.eval_pattern ~validate:(not (String.equal kind "fb")) idx pattern
  else
    let expr = Dkindex_pathexpr.Path_parser.parse expr_str in
    match Dkindex_pathexpr.Path_ast.as_label_seq expr with
    | Some labels -> Query_eval.eval_path_strings idx labels
    | None -> Query_eval.eval_expr idx expr

let print_result g show result =
  Printf.printf "%d matching nodes (cost: %s; %d candidates validated, %d sound index nodes)\n"
    (List.length result.Query_eval.nodes)
    (Format.asprintf "%a" Dkindex_pathexpr.Cost.pp result.Query_eval.cost)
    result.Query_eval.n_candidates result.Query_eval.n_certain;
  List.iteri
    (fun i u ->
      if i < show then Printf.printf "  node %d label %s\n" u (Data_graph.label_name g u))
    result.Query_eval.nodes

(* --plan: route the query through the cost-based planner over the
   whole index family (or over the loaded index alone). *)
let planned_query g k workload_size seed load expr_str plan_sel explain show check =
  let module Plan = Dkindex_planner.Plan in
  let module Planner = Dkindex_planner.Planner in
  if String.length expr_str > 0 && Char.equal expr_str.[0] '/' then
    failwith "--plan covers path expressions; tree patterns pick their index with --index";
  let expr = Dkindex_pathexpr.Path_parser.parse expr_str in
  let pl =
    match load with
    | Some path ->
      let idx =
        match Container.probe path with
        | Some Container.Index -> Index_serial.load_container path
        | Some Container.Graph ->
          failwith (path ^ " is a graph container, not an index; pass it to --input")
        | None -> Index_serial.load path
      in
      let pl = Planner.create (Index_graph.data idx) in
      Planner.register pl ~name:"loaded" ~cache:(Validation_cache.create idx) idx;
      pl
    | None ->
      let queries = Dkindex_workload.Query_gen.generate ~seed ~count:workload_size g in
      let reqs = Dkindex_workload.Miner.mine g queries in
      let pl = Planner.create g in
      let reg name idx = Planner.register pl ~name ~cache:(Validation_cache.create idx) idx in
      reg "dk" (Dk_index.build g ~reqs);
      reg "ak" (A_k_index.build g ~k);
      reg "1-index" (One_index.build g);
      reg "label-split" (Label_split.build g);
      reg "fb" (Fb_index.build g);
      Planner.observe_workload pl queries;
      pl
  in
  let dg = Planner.data pl in
  if explain then List.iter print_endline (Planner.explain pl expr);
  let plan, result =
    match plan_sel with
    | "auto" -> Planner.eval_planned pl expr
    | name -> (
      let wanted (p : Plan.t) =
        match p.Plan.access with
        | Plan.Scan n -> String.equal n name
        | Plan.Raw -> String.equal name "raw"
        | Plan.Intersect _ -> false
      in
      match List.find_opt wanted (Planner.plans pl expr) with
      | Some p -> (p, Planner.execute pl p expr)
      | None ->
        failwith
          (Printf.sprintf "no plan for --plan %s (family: %s, raw)" name
             (String.concat ", " (Planner.names pl))))
  in
  Printf.printf "plan: %s\n" (Plan.describe plan);
  print_result dg show result;
  if check then begin
    (* Execute every candidate plan the enumerator emitted and require
       bit-for-bit identical answers (the raw-graph plan is always in
       the list, so this also checks against direct evaluation). *)
    let ranked = Planner.plans pl expr in
    let mismatches =
      List.filter
        (fun p ->
          (Planner.execute pl p expr).Query_eval.nodes <> result.Query_eval.nodes)
        ranked
    in
    if mismatches <> [] then begin
      List.iter
        (fun p -> Printf.eprintf "error: --check mismatch on %s\n" (Plan.access_name p.Plan.access))
        mismatches;
      exit 1
    end;
    Printf.printf "check OK: %d plans agree (%d nodes)\n" (List.length ranked)
      (List.length result.Query_eval.nodes)
  end

let query g kind k workload_size seed load expr_str show check plan_sel explain =
  match plan_sel, explain with
  | Some sel, _ -> planned_query g k workload_size seed load expr_str sel explain show check
  | None, true -> planned_query g k workload_size seed load expr_str "auto" true show check
  | None, false ->
  let idx =
    match load with
    | Some path -> (
      match Container.probe path with
      | Some Container.Index -> Index_serial.load_container path
      | Some Container.Graph ->
        failwith (path ^ " is a graph container, not an index; pass it to --input")
      | None -> Index_serial.load path)
    | None -> make_index g kind k workload_size seed
  in
  let g = Index_graph.data idx in
  let result = eval_one idx kind expr_str in
  print_result g show result;
  if check then begin
    (* Cross-check against a fully in-RAM copy: the text round-trip
       rebuilds every array on the OCaml heap, so when the index came
       from a mapped container this compares mmap-backed evaluation
       against heap-backed evaluation bit for bit. *)
    let ram = Index_serial.of_string (Index_serial.to_string idx) in
    let result' = eval_one ram kind expr_str in
    if result.Query_eval.nodes <> result'.Query_eval.nodes then begin
      Printf.eprintf "error: --check mismatch (%d mapped vs %d in-RAM nodes)\n"
        (List.length result.Query_eval.nodes)
        (List.length result'.Query_eval.nodes);
      exit 1
    end;
    Printf.printf "check OK: in-RAM evaluation matches (%d nodes)\n"
      (List.length result'.Query_eval.nodes)
  end

let query_cmd =
  let expr =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPR" ~doc:"Path expression, e.g. 'director.movie.title'")
  in
  let show = Arg.(value & opt int 10 & info [ "show" ] ~docv:"N" ~doc:"Results to print") in
  let load =
    Arg.(
      value
      & opt (some string) None
      & info [ "load-index" ] ~docv:"FILE"
          ~doc:
            "Use a previously saved index (text or .dkc container, \
             autodetected) instead of building one")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Re-evaluate on a fully in-RAM copy of the index and fail unless \
             the answers agree bit for bit (with --plan: execute every \
             candidate plan and require identical answers)")
  in
  let plan =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan" ] ~docv:"PLAN"
          ~doc:
            "Route the query through the cost-based planner. 'auto' picks \
             the cheapest plan from the statistics catalog; naming an index \
             (dk, ak, 1-index, label-split, fb — or 'raw') forces that \
             access path")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:"Print the ranked candidate-plan list with cost estimates (implies --plan auto)")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Evaluate a query through an index: a regular path expression \
          ('a.b.c', 'a.(b|c)*.d'), or, starting with '/', a branching tree \
          pattern ('//a[./b]//c')")
    Term.(
      const query $ graph_term $ index_kind_arg $ k_arg $ workload_arg $ seed_arg $ load $ expr
      $ show $ check $ plan $ explain)

(* ------------------------------------------------------------------ *)
(* workload                                                            *)

let workload g count seed =
  let queries = Dkindex_workload.Query_gen.generate ~seed ~count g in
  Format.printf "generated %d queries:@." (List.length queries);
  List.iter (fun q -> Format.printf "  %a@." (Dkindex_workload.Query_gen.pp_query g) q) queries;
  let reqs = Dkindex_workload.Miner.mine g queries in
  Format.printf "mined requirements:@.";
  List.iter (fun (l, k) -> Format.printf "  %-28s k >= %d@." l k) reqs

let workload_cmd =
  let count = Arg.(value & opt int 100 & info [ "count" ] ~docv:"N" ~doc:"Queries") in
  Cmd.v
    (Cmd.info "workload" ~doc:"Generate a workload and mine requirements")
    Term.(const workload $ graph_term $ count $ seed_arg)

(* ------------------------------------------------------------------ *)
(* dot                                                                 *)

let dot g output max_nodes =
  Dot.write_dot ~max_nodes output g;
  Printf.printf "wrote %s\n" output

let dot_cmd =
  let output =
    Arg.(
      required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"DOT file")
  in
  let max_nodes =
    Arg.(value & opt int 500 & info [ "max-nodes" ] ~docv:"N" ~doc:"Node cap")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export a dataset to Graphviz")
    Term.(const dot $ graph_term $ output $ max_nodes)

(* ------------------------------------------------------------------ *)
(* verify                                                              *)

let verify g kind k workload_size seed load quick =
  let idx =
    match load with Some path -> Index_serial.load path | None -> make_index g kind k workload_size seed
  in
  let g = Index_graph.data idx in
  let queries =
    match Dkindex_workload.Query_gen.generate ~seed ~count:50 g with
    | queries -> queries
    | exception Invalid_argument _ -> []
  in
  let report = Verify.run ~quick ~queries idx in
  Format.printf "%a@?" Verify.pp_report report;
  if report.Verify.issues <> [] then exit 1

let verify_cmd =
  let load =
    Arg.(
      value
      & opt (some string) None
      & info [ "load-index" ] ~docv:"FILE" ~doc:"Verify a previously saved index")
  in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Skip the label-path soundness check") in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Audit an index: structural invariants, extent soundness, query exactness")
    Term.(
      const verify $ graph_term $ index_kind_arg $ k_arg $ workload_arg $ seed_arg $ load $ quick)

(* ------------------------------------------------------------------ *)
(* check-history                                                       *)

let check_history file staleness =
  let module History = Dkindex_server.History in
  let entries, final = History.load file in
  let report =
    History.check ~staleness_bound_ms:(int_of_float (staleness *. 1000.0)) ~final entries
  in
  print_endline (History.report_to_string report);
  if not report.History.ok then exit 4

let check_history_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"Operation history saved by dkindex-loadgen --nemesis --history FILE")
  in
  let staleness =
    Arg.(
      value & opt float 10.0
      & info [ "staleness-check" ] ~docv:"SECONDS"
          ~doc:
            "Staleness bound to enforce on wire-stamped replica ages (match the server's \
             --staleness-bound; <= 0 disables)")
  in
  Cmd.v
    (Cmd.info "check-history"
       ~doc:
         "Re-run the acknowledged-history consistency checker offline on a saved history \
          (acked writes survive, reads monotonic, staleness bounded); exit 4 on violation")
    Term.(const check_history $ file $ staleness)

(* ------------------------------------------------------------------ *)

(* Global --verbose handling: each subcommand's term already built, so
   install the reporter from an environment check at startup. *)
let () =
  (match Sys.getenv_opt "DKINDEX_VERBOSE" with
  | Some ("1" | "true" | "debug") ->
    Logs.set_reporter (Logs.format_reporter ());
    Logs.Src.set_level Dkindex_core.Log.src (Some Logs.Debug)
  | Some _ | None -> ());
  let info =
    Cmd.info "dkindex" ~version:"1.0.0"
      ~doc:"Adaptive structural summaries for graph-structured data (SIGMOD 2003 D(k)-index)"
  in
  let generate_cmd, datagen_cmd = generate_cmds in
  exit
    (Cmd.eval
       (Cmd.group info
          [ generate_cmd; datagen_cmd; stats_cmd; build_cmd; query_cmd; workload_cmd; verify_cmd; dot_cmd; check_history_cmd ]))
