(* dkindex-loadgen: drive a dkindex-server with N concurrent
   connections.

   Throughput mode (default) reports wall-clock request rate and
   latency percentiles over the pinned query workload.

   Check mode (--check) is the end-to-end correctness harness: it
   rebuilds the server's dataset locally (same --xmark/--seed recipe),
   then runs a query phase, an update phase (replayed locally through
   Dk_update), and a second query phase — requiring every server
   response to be bit-for-bit identical to the in-process
   Query_eval.eval_batch answer, validation costs included (queries go
   out with no_cache so cache warm-up cannot perturb costs). *)

open Cmdliner
open Dkindex_graph
open Dkindex_core
module Client = Dkindex_server.Client
module Wire = Dkindex_server.Wire
module Dataset = Dkindex_server.Dataset
module Chaos = Dkindex_server.Chaos
module History = Dkindex_server.History

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc:"Server address")

let port_arg = Arg.(value & opt int 7411 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server port")

let conns_arg =
  Arg.(value & opt int 4 & info [ "c"; "connections" ] ~docv:"N" ~doc:"Concurrent connections")

let requests_arg =
  Arg.(
    value & opt int 2000
    & info [ "n"; "requests" ] ~docv:"N" ~doc:"Total requests (throughput mode)")

let xmark_arg =
  Arg.(
    value & opt int 40
    & info [ "xmark" ] ~docv:"SCALE" ~doc:"Dataset scale (must match the server)")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Dataset seed")

let updates_arg =
  Arg.(
    value & opt int 50 & info [ "updates" ] ~docv:"N" ~doc:"Edge additions in check mode")

let check_arg =
  Arg.(value & flag & info [ "check" ] ~doc:"Verify responses against an in-process index")

let recovered_arg =
  Arg.(
    value & flag
    & info [ "recovered" ]
        ~doc:
          "With --check: the server under test was restarted from its checkpoint + WAL after \
           a previous --check run acknowledged the updates.  Apply the update phase locally \
           only, then require the recovered server's answers to match bit-for-bit.")

let retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Self-healing reads: reconnect (exponential backoff) and transparently re-issue \
           idempotent queries up to N times, e.g. across a server restart.")

let no_cache_arg =
  Arg.(value & flag & info [ "no-cache" ] ~doc:"Send queries with the no_cache flag")

let pipeline_arg =
  Arg.(
    value & opt int 1
    & info [ "pipeline" ] ~docv:"K"
        ~doc:
          "Keep up to K requests in flight per connection instead of strict \
           request/response lockstep.  Replies are matched to requests by frame id, so \
           --check remains bit-for-bit under pipelining.")

let promote_arg =
  Arg.(
    value & flag
    & info [ "promote" ]
        ~doc:"Send Promote_primary to the server (failover: flip a replica into a primary) and exit")

let wait_replication_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "wait-replication" ] ~docv:"SECONDS"
        ~doc:
          "Poll the server's stats until every connected replica reports zero bytes behind (or \
           the timeout expires — nonzero exit); run after a write workload to bound failover \
           data loss")

let nemesis_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "nemesis" ] ~docv:"SPEC"
        ~doc:
          "Chaos mode: interpose a seeded fault-injecting TCP proxy between the loadgen and \
           the server, drive a write/probe workload through it while recording an operation \
           history, then verify the acknowledged-history consistency contract (acked writes \
           survive, reads monotonic, staleness bounded, fencing honored).  SPEC is \
           comma-separated clauses, e.g. delay:2~1,partition:1+2,reset-all:4 — see \
           Chaos.spec_of_string.  The empty string runs chaos mode with no faults.")

let history_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "history" ] ~docv:"FILE"
        ~doc:"With --nemesis: save the recorded operation history (re-checkable offline)")

let staleness_check_arg =
  Arg.(
    value & opt float 10.0
    & info [ "staleness-check" ] ~docv:"SECONDS"
        ~doc:
          "With --nemesis: the staleness bound the checker enforces on wire-stamped replica \
           ages (match the server's --staleness-bound; <= 0 disables)")

let integrity_check_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "integrity-check" ] ~docv:"HOST:PORT[,HOST:PORT...]"
        ~doc:
          "After the workload (or alone), poll every listed server's integrity digest until \
           they all report the same root digest at the same write-stream position — the \
           end-to-end proof that primary and replicas serve identical content.  Exit 4 if \
           they have not converged within --integrity-timeout.")

let integrity_timeout_arg =
  Arg.(
    value & opt float 30.0
    & info [ "integrity-timeout" ] ~docv:"SECONDS"
        ~doc:"How long --integrity-check polls before declaring divergence")

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0 else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

(* Self-healing knobs, set from --retries: every connection the
   loadgen opens reconnects with backoff and retries idempotent reads
   this many times. *)
let retries = ref 0

let connect ~host ~port ?(seed = 0) () =
  Client.connect ~host ~port ~attempts:(!retries + 1) ~retries:!retries
    ~timeout_s:(if !retries > 0 then 30.0 else 0.0)
    ~seed ()

(* Fan [f i] over [count] tasks on [conns] driver domains (task i on
   domain i mod conns), each with its own connection. *)
let fan_out ~host ~port ~conns ~count f =
  let doms =
    List.init conns (fun d ->
        Domain.spawn (fun () ->
            let c = connect ~host ~port ~seed:d () in
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                let i = ref d in
                while !i < count do
                  f c !i;
                  i := !i + conns
                done)))
  in
  List.iter Domain.join doms

(* Pipelined fan-out: like [fan_out], but each connection keeps up to
   [depth] requests in flight, sending the next as soon as a slot
   frees.  Replies are matched to their request by frame id, so
   server-side reordering cannot misattribute an answer.  [on_reply i
   t0 msg] runs on the driver domain that sent request [i] at [t0]. *)
let fan_out_pipelined ~host ~port ~conns ~depth ~count ~mk ~on_reply =
  let depth = max 1 depth in
  let doms =
    List.init conns (fun d ->
        Domain.spawn (fun () ->
            let c = connect ~host ~port ~seed:d () in
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                let inflight = Hashtbl.create (2 * depth) in
                let next = ref d in
                let drain_one () =
                  let r = Client.recv c in
                  match Hashtbl.find_opt inflight r.Wire.id with
                  | None -> failwith "pipelined reply with unknown frame id"
                  | Some (i, t0) ->
                    Hashtbl.remove inflight r.Wire.id;
                    on_reply i t0 r.Wire.msg
                in
                while !next < count do
                  if Hashtbl.length inflight >= depth then drain_one ()
                  else begin
                    let i = !next in
                    let id = Client.send c (mk i) in
                    Hashtbl.replace inflight id (i, Unix.gettimeofday ());
                    next := !next + conns
                  end
                done;
                while Hashtbl.length inflight > 0 do
                  drain_one ()
                done)))
  in
  List.iter Domain.join doms

let query_of_labels ~no_cache labels =
  Wire.Query_path { flags = { no_cache }; labels }

let server_stats ~host ~port () =
  let c = connect ~host ~port () in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      match Client.call c Wire.Stats with
      | Wire.Stats_reply kvs -> kvs
      | _ -> failwith "stats: unexpected response kind")

(* The post-run health summary: load shedding, queue pressure, and —
   when the server is part of a replica set — how far behind each
   replica is. *)
let print_stats_summary kvs =
  let get k = List.assoc_opt k kvs in
  let getd k = Option.value (get k) ~default:"0" in
  Printf.printf "server: shed %s  deadline_expired %s  queue r/w %s/%s (cap %s)  in_flight %s\n"
    (getd "shed") (getd "deadline_expired") (getd "read_queue_depth") (getd "write_queue_depth")
    (getd "queue_capacity") (getd "in_flight");
  Printf.printf
    "server: uptime %s s  evicted_slow_clients %s  rejected_at_admission %s\n"
    (getd "uptime_s") (getd "evicted_slow_clients") (getd "rejected_at_admission");
  (match (get "role", get "epoch") with
  | Some role, Some epoch ->
    Printf.printf "server: role %s  epoch %s  fenced %s\n" role epoch (getd "fenced")
  | _ -> ());
  (match get "vcache_instances" with
  | Some _ ->
    Printf.printf "vcache: %s instance(s)  hits %s  misses %s  entries %s  evictions %s\n"
      (getd "vcache_instances") (getd "vcache_hits") (getd "vcache_misses")
      (getd "vcache_entries") (getd "vcache_evictions")
  | None -> ());
  (match get "planned_queries" with
  | Some n when n <> "0" ->
    Printf.printf
      "planner: planned %s (index scans %s, raw scans %s)  explains %s  fallbacks %s\n" n
      (getd "planned_index_scans") (getd "planned_raw_scans") (getd "explain_queries")
      (getd "plan_fallbacks")
  | _ -> ());
  (match get "replicas_connected" with
  | Some n when n <> "0" ->
    Printf.printf "replication: %s replica(s) connected\n" n;
    List.iter
      (fun (k, v) ->
        if String.length k > 8 && String.sub k 0 8 = "replica." then
          Printf.printf "  %s = %s\n" k v)
      kvs
  | _ -> ());
  (match get "replication_connected" with
  | Some _ ->
    Printf.printf "replication: connected %s  applied %s/%s  behind %s bytes  stale %s\n"
      (getd "replication_connected") (getd "replication_applied_seq")
      (getd "replication_applied_offset") (getd "replication_bytes_behind")
      (getd "replication_stale")
  | None -> ());
  match get "scrub_passes" with
  | Some _ ->
    Printf.printf
      "integrity: scrub_passes %s  corruptions_found %s  ranges_repaired %s  divergences %s  \
       resyncs %s\n"
      (getd "scrub_passes") (getd "scrub_corruptions_found") (getd "ranges_repaired")
      (getd "replica_divergences") (getd "integrity_resyncs")
  | None -> ()

let throughput ~host ~port ~conns ~requests ~no_cache ~pipeline (ds : Dataset.t) =
  let queries = Array.of_list ds.queries in
  let nq = Array.length queries in
  let lat = Array.make requests 0.0 in
  let check_reply i = function
    | Wire.Result _ | Wire.Overloaded -> ()
    | Wire.Error_reply { message; _ } ->
      failwith (Printf.sprintf "request %d: server error: %s" i message)
    | _ -> failwith (Printf.sprintf "request %d: unexpected response kind" i)
  in
  let t0 = Unix.gettimeofday () in
  if pipeline > 1 then
    fan_out_pipelined ~host ~port ~conns ~depth:pipeline ~count:requests
      ~mk:(fun i -> query_of_labels ~no_cache queries.(i mod nq))
      ~on_reply:(fun i t0 msg ->
        check_reply i msg;
        lat.(i) <- (Unix.gettimeofday () -. t0) *. 1e6)
  else
    fan_out ~host ~port ~conns ~count:requests (fun c i ->
        let q = query_of_labels ~no_cache queries.(i mod nq) in
        let s = Unix.gettimeofday () in
        check_reply i (Client.call c q);
        lat.(i) <- (Unix.gettimeofday () -. s) *. 1e6);
  let wall = Unix.gettimeofday () -. t0 in
  Array.sort compare lat;
  Printf.printf "%d requests over %d connections (pipeline %d) in %.3f s: %.0f req/s\n" requests
    conns (max 1 pipeline) wall
    (float_of_int requests /. wall);
  Printf.printf "latency us: p50 %.0f  p95 %.0f  p99 %.0f  max %.0f\n" (percentile lat 0.50)
    (percentile lat 0.95) (percentile lat 0.99)
    lat.(Array.length lat - 1);
  match server_stats ~host ~port () with
  | kvs -> print_stats_summary kvs
  | exception _ -> ()

(* ------------------------------------------------------------------ *)
(* Check mode *)

let expect_result what = function
  | Wire.Result r -> r
  | Wire.Error_reply { message; _ } -> failwith (what ^ ": server error: " ^ message)
  | Wire.Overloaded -> failwith (what ^ ": shed under a check workload")
  | _ -> failwith (what ^ ": unexpected response kind")

let compare_result ~what (got : Wire.query_result) (want : Query_eval.result) =
  let fail fmt = Printf.ksprintf failwith ("%s: " ^^ fmt) what in
  if Array.to_list got.nodes <> want.nodes then
    fail "nodes differ (%d vs %d)" (Array.length got.nodes) (List.length want.nodes);
  if got.index_visits <> want.cost.Dkindex_pathexpr.Cost.index_visits then
    fail "index_visits %d <> %d" got.index_visits want.cost.index_visits;
  if got.data_visits <> want.cost.Dkindex_pathexpr.Cost.data_visits then
    fail "data_visits %d <> %d" got.data_visits want.cost.data_visits;
  if got.n_candidates <> want.n_candidates then
    fail "n_candidates %d <> %d" got.n_candidates want.n_candidates;
  if got.n_certain <> want.n_certain then fail "n_certain %d <> %d" got.n_certain want.n_certain

let intern_queries (ds : Dataset.t) =
  let pool = Data_graph.pool ds.graph in
  List.map
    (fun labels -> Array.of_list (List.map (Label.Pool.intern pool) labels))
    ds.queries

let query_phase ~host ~port ~conns ~phase ~pipeline (ds : Dataset.t) =
  let queries = Array.of_list ds.queries in
  let nq = Array.length queries in
  let got = Array.make nq None in
  (if pipeline > 1 then
     fan_out_pipelined ~host ~port ~conns ~depth:pipeline ~count:nq
       ~mk:(fun i -> query_of_labels ~no_cache:true queries.(i))
       ~on_reply:(fun i _t0 msg ->
         got.(i) <- Some (expect_result (Printf.sprintf "%s query %d" phase i) msg))
   else
     fan_out ~host ~port ~conns ~count:nq (fun c i ->
         let r = Client.call c (query_of_labels ~no_cache:true queries.(i)) in
         got.(i) <- Some (expect_result (Printf.sprintf "%s query %d" phase i) r)));
  let want =
    Query_eval.eval_batch ~domains:1 ~strategy:`Forward ~cache:false ds.index
      (intern_queries ds)
  in
  Array.iteri
    (fun i w ->
      match got.(i) with
      | None -> failwith (Printf.sprintf "%s query %d: no response" phase i)
      | Some g -> compare_result ~what:(Printf.sprintf "%s query %d" phase i) g w)
    want;
  nq

let check_edges ~updates (ds : Dataset.t) =
  List.filteri (fun i _ -> i < updates) ds.update_edges
  |> List.filter (fun (u, v) -> not (Data_graph.has_edge ds.graph u v))

let check ~host ~port ~conns ~updates ~pipeline (ds : Dataset.t) =
  let n1 = query_phase ~host ~port ~conns ~phase:"phase-1" ~pipeline ds in
  Printf.printf "phase 1: %d queries over %d connections match bit-for-bit\n%!" n1 conns;
  let edges = check_edges ~updates ds in
  let c = connect ~host ~port () in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      List.iter
        (fun (u, v) ->
          (match Client.call c (Wire.Add_edge { u; v }) with
          | Wire.Ok_reply _ -> ()
          | Wire.Error_reply { message; _ } ->
            failwith (Printf.sprintf "add_edge %d->%d: %s" u v message)
          | _ -> failwith "add_edge: unexpected response");
          Dk_update.add_edge ds.index u v)
        edges);
  Index_graph.prepare_serving ds.index;
  Printf.printf "phase 2: %d edge additions applied on both sides\n%!" (List.length edges);
  let n3 = query_phase ~host ~port ~conns ~phase:"phase-3" ~pipeline ds in
  Printf.printf "phase 3: %d post-update queries match bit-for-bit\n%!" n3;
  Printf.printf "check OK\n%!"

(* Recovery check: a previous --check run pushed the updates and got
   them acknowledged; the server has since been killed and restarted
   from its checkpoint + WAL.  Replay the same updates locally only
   and require the recovered server to answer from the same state. *)
let check_recovered ~host ~port ~conns ~updates ~pipeline (ds : Dataset.t) =
  let edges = check_edges ~updates ds in
  List.iter (fun (u, v) -> Dk_update.add_edge ds.index u v) edges;
  Index_graph.prepare_serving ds.index;
  Printf.printf "recovered: %d acknowledged updates replayed locally\n%!" (List.length edges);
  let n = query_phase ~host ~port ~conns ~phase:"recovered" ~pipeline ds in
  Printf.printf "recovered: %d queries against the restarted server match bit-for-bit\n%!" n;
  Printf.printf "recovered check OK\n%!"

(* Failover helper: flip a replica into a primary. *)
let promote ~host ~port () =
  let c = connect ~host ~port () in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      match Client.call c Wire.Promote_primary with
      | Wire.Ok_reply { epoch; _ } -> Printf.printf "promoted: %s:%d now primary, epoch %d\n%!" host port epoch
      | Wire.Error_reply { message; _ } -> failwith ("promote: " ^ message)
      | _ -> failwith "promote: unexpected response kind")

(* Wait until every replica connected to HOST:PORT (a primary) reports
   zero bytes behind — run after a write workload to bound how much an
   immediate failover could lose. *)
(* Works against either side: on a primary, waits for every connected
   replica to report zero bytes behind; on a replica, waits for that
   replica itself to be connected and fully caught up. *)
let wait_replication ~host ~port ~timeout_s () =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    let kvs = server_stats ~host ~port () in
    let v k = Option.value (List.assoc_opt k kvs) ~default:"" in
    let done_msg =
      if v "role" = "replica" then
        if
          v "replication_connected" = "true"
          && v "replication_bytes_behind" = "0"
          && v "replication_applied_seq" <> "-1"
        then Some "replication: replica caught up"
        else None
      else begin
        let connected =
          int_of_string (Option.value (List.assoc_opt "replicas_connected" kvs) ~default:"0")
        in
        let behind =
          List.exists
            (fun (k, v) ->
              String.length k > 8
              && String.sub k 0 8 = "replica."
              && (let n = String.length k in
                  n > 13 && String.sub k (n - 13) 13 = ".bytes_behind")
              && v <> "0")
            kvs
        in
        if connected > 0 && not behind then
          Some (Printf.sprintf "replication: %d replica(s) caught up" connected)
        else None
      end
    in
    match done_msg with
    | Some msg -> Printf.printf "%s\n%!" msg
    | None ->
      if Unix.gettimeofday () > deadline then begin
        Printf.eprintf "dkindex-loadgen: replication still behind after %.1f s\n%!" timeout_s;
        exit 3
      end
      else begin
        Unix.sleepf 0.05;
        go ()
      end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Integrity convergence check: poll every endpoint's digest until all
   report the same root at the same write-stream position.  Run after
   the write stream drains; exit 4 on timeout = the cluster is serving
   divergent content and anti-entropy has not (or cannot) repair it. *)

let parse_endpoints spec =
  String.split_on_char ',' spec
  |> List.filter (fun s -> s <> "")
  |> List.map (fun s ->
         match String.rindex_opt s ':' with
         | None -> failwith (Printf.sprintf "--integrity-check: %s is not HOST:PORT" s)
         | Some i -> (
           let h = String.sub s 0 i
           and p = String.sub s (i + 1) (String.length s - i - 1) in
           match int_of_string_opt p with
           | None -> failwith (Printf.sprintf "--integrity-check: bad port in %s" s)
           | Some p -> (h, p)))

let digest_of ~host ~port =
  let c = connect ~host ~port () in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      match Client.call c Wire.Digest_request with
      | Wire.Digest_reply { seq; offset; root; n_nodes; _ } -> (seq, offset, root, n_nodes)
      | Wire.Error_reply { message; _ } -> failwith ("digest: " ^ message)
      | _ -> failwith "digest: unexpected response kind")

let integrity_check ~endpoints ~timeout_s () =
  (match endpoints with
  | [] -> failwith "--integrity-check: no endpoints"
  | _ -> ());
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    let ds =
      List.map
        (fun (h, p) -> try Some (digest_of ~host:h ~port:p) with _ -> None)
        endpoints
    in
    let converged =
      match ds with
      | Some ((s0, _, _, _) as d0) :: rest when s0 >= 0 ->
        List.for_all (function Some d -> d = d0 | None -> false) rest
      | _ -> false
    in
    if converged then
      match List.hd ds with
      | Some (s0, o0, r0, _) ->
        Printf.printf "integrity: %d server(s) converged at position (%d,%d), root %012x\n%!"
          (List.length endpoints) s0 o0 r0
      | None -> assert false
    else if Unix.gettimeofday () > deadline then begin
      Printf.eprintf "dkindex-loadgen: integrity digests did not converge after %.1f s\n%!"
        timeout_s;
      List.iteri
        (fun i d ->
          match d with
          | Some (s, o, r, n) ->
            Printf.eprintf "  endpoint %d: position (%d,%d)  root %012x  n_nodes %d\n%!" i s o
              r n
          | None -> Printf.eprintf "  endpoint %d: unreachable\n%!" i)
        ds;
      exit 4
    end
    else begin
      Unix.sleepf 0.2;
      go ()
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Nemesis mode: chaos proxy + recorded history + consistency check *)

(* One driver connection's workload: every 4th op writes a fresh edge
   from the pinned update pool, the rest probe recently written edges.
   Everything is recorded; failures are outcomes, never fatal. *)
let nemesis_driver ~rec_ ~pport ~conns ~requests ~pool d =
  let c =
    Client.connect ~host:"127.0.0.1" ~port:pport ~attempts:3 ~retries:2 ~timeout_s:5.0
      ~backoff_base_s:0.02 ~backoff_max_s:0.25 ~seed:d ~breaker_threshold:5
      ~breaker_cooldown_s:0.5 ()
  in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      let npool = Array.length pool in
      let seq = ref 0 in
      let record op outcome invoked_at =
        History.record rec_
          {
            conn = d;
            seq = !seq;
            op;
            invoked_at;
            completed_at = Unix.gettimeofday ();
            outcome;
          };
        incr seq
      in
      let i = ref d in
      while !i < requests do
        let widx = !i / 4 in
        let u, v = pool.(widx mod npool) in
        let t0 = Unix.gettimeofday () in
        (if !i mod 4 = 0 then
           let outcome =
             match Client.call c (Wire.Add_edge { u; v }) with
             | Wire.Ok_reply { epoch; _ } -> History.Acked { epoch }
             | Wire.Error_reply { message; _ } -> History.Refused message
             | Wire.Overloaded -> History.Refused "overloaded"
             | Wire.Read_only -> History.Refused "read-only"
             | Wire.Not_primary _ -> History.Refused "not primary"
             | Wire.Fenced _ -> History.Refused "fenced"
             | _ -> History.Refused "unexpected response kind"
             | exception Client.Error e ->
               History.Ambiguous (Client.error_to_string e)
           in
           record (History.Add_edge { u; v }) outcome t0
         else
           let outcome =
             match Client.call c (Wire.Has_edge { u; v }) with
             | Wire.Edge_reply { present; generation; age_ms } ->
               History.Read_ok
                 {
                   present;
                   generation;
                   age_ms;
                   endpoint = 0;
                   epoch = Client.server_epoch c;
                 }
             | Wire.Error_reply { message; _ } -> History.Refused message
             | Wire.Overloaded -> History.Refused "overloaded"
             | _ -> History.Refused "unexpected response kind"
             | exception Client.Error e ->
               History.Ambiguous (Client.error_to_string e)
           in
           record (History.Probe { u; v }) outcome t0);
        i := !i + conns
      done;
      Client.circuit_open_count c)

(* The final converged state: probe every edge the history ever tried
   to write, directly against the server (the chaos proxy is out of
   the loop by now). *)
let final_sweep ~host ~port entries =
  let edges = Hashtbl.create 64 in
  List.iter
    (fun (e : History.entry) ->
      match e.op with
      | History.Add_edge { u; v } -> Hashtbl.replace edges (u, v) ()
      | History.Probe _ -> ())
    entries;
  let c = Client.connect ~host ~port ~attempts:5 ~retries:3 ~timeout_s:10.0 () in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      Hashtbl.fold
        (fun (u, v) () acc ->
          match Client.call c (Wire.Has_edge { u; v }) with
          | Wire.Edge_reply { present; _ } -> (u, v, present) :: acc
          | Wire.Error_reply { message; _ } ->
            failwith (Printf.sprintf "final sweep: probe (%d,%d) refused: %s" u v message)
          | _ -> failwith (Printf.sprintf "final sweep: probe (%d,%d): unexpected response kind" u v))
        edges [])

let nemesis ~host ~port ~conns ~requests ~xmark ~seed ~spec_str ~history_path
    ~staleness_check () =
  let spec =
    match Chaos.spec_of_string spec_str with
    | Ok s -> s
    | Error m -> failwith m
  in
  Printf.printf "nemesis: seed %d  spec %S  upstream %s:%d\n%!" seed
    (Chaos.spec_to_string spec) host port;
  let ds = Dataset.make ~seed ~scale:xmark ~n_updates:(max 200 ((requests / 4) + 8)) () in
  let pool =
    Array.of_list
      (List.filter
         (fun (u, v) -> not (Dkindex_graph.Data_graph.has_edge ds.graph u v))
         ds.update_edges)
  in
  if Array.length pool = 0 then failwith "nemesis: empty update pool";
  let proxy = Chaos.create ~seed ~upstream:(host, port) spec in
  let pport = Chaos.port proxy in
  let pdom = Domain.spawn (fun () -> Chaos.run proxy) in
  let rec_ = History.recorder () in
  let opens =
    List.init conns (fun d ->
        Domain.spawn (fun () ->
            try nemesis_driver ~rec_ ~pport ~conns ~requests ~pool d
            with _ -> 0))
    |> List.map Domain.join
    |> List.fold_left ( + ) 0
  in
  Chaos.stop proxy;
  Domain.join pdom;
  let cs = Chaos.stats proxy in
  Printf.printf
    "chaos: %d conns proxied  %d bytes forwarded  %d truncations  %d resets  %d stalls  %d \
     partitions\n%!"
    cs.accepted cs.forwarded_bytes cs.truncations cs.resets cs.stalls cs.partitions;
  Printf.printf "client: circuit breaker opened %d time(s)\n%!" opens;
  let entries = History.entries rec_ in
  let final = final_sweep ~host ~port entries in
  let report =
    History.check
      ~staleness_bound_ms:(int_of_float (staleness_check *. 1000.0))
      ~final entries
  in
  Option.iter
    (fun path ->
      History.save ~entries ~final path;
      Printf.printf "history: %d entries saved to %s\n%!" (List.length entries) path)
    history_path;
  print_endline (History.report_to_string report);
  (match server_stats ~host ~port () with
  | kvs -> print_stats_summary kvs
  | exception _ -> ());
  if not report.History.ok then exit 4

let main host port conns requests xmark seed updates do_check recovered n_retries no_cache
    do_promote wait_repl pipeline nemesis_spec history_path staleness_check integrity_spec
    integrity_timeout =
  let pipeline = max 1 pipeline in
  retries := max 0 n_retries;
  let run_integrity_check () =
    Option.iter
      (fun spec ->
        integrity_check ~endpoints:(parse_endpoints spec) ~timeout_s:integrity_timeout ())
      integrity_spec
  in
  if do_promote then promote ~host ~port ()
  else if nemesis_spec <> None then begin
    nemesis ~host ~port ~conns ~requests ~xmark ~seed
      ~spec_str:(Option.get nemesis_spec) ~history_path ~staleness_check ();
    run_integrity_check ()
  end
  else if do_check then begin
    let ds = Dataset.make ~seed ~scale:xmark () in
    if recovered then check_recovered ~host ~port ~conns ~updates ~pipeline ds
    else check ~host ~port ~conns ~updates ~pipeline ds;
    Option.iter (fun timeout_s -> wait_replication ~host ~port ~timeout_s ()) wait_repl;
    run_integrity_check ()
  end
  else
    match (wait_repl, integrity_spec) with
    | Some timeout_s, _ ->
      wait_replication ~host ~port ~timeout_s ();
      run_integrity_check ()
    | None, Some _ -> run_integrity_check ()
    | None, None ->
      let ds = Dataset.make ~seed ~scale:xmark () in
      throughput ~host ~port ~conns ~requests ~no_cache ~pipeline ds

let cmd =
  let doc = "load-generate against dkindex-server; --check verifies bit-for-bit answers" in
  Cmd.v
    (Cmd.info "dkindex-loadgen" ~doc)
    Term.(
      const main $ host_arg $ port_arg $ conns_arg $ requests_arg $ xmark_arg $ seed_arg
      $ updates_arg $ check_arg $ recovered_arg $ retries_arg $ no_cache_arg $ promote_arg
      $ wait_replication_arg $ pipeline_arg $ nemesis_arg $ history_arg
      $ staleness_check_arg $ integrity_check_arg $ integrity_timeout_arg)

let () = exit (Cmd.eval cmd)
