(* dkindex-server: serve a D(k)-index over TCP (the dkserve wire
   protocol).  The index comes from a saved snapshot (--load) or is
   built from the pinned deterministic XMark dataset (--xmark SCALE),
   which is what dkindex-loadgen's check mode reconstructs locally. *)

open Cmdliner
module Server = Dkindex_server.Server
module Checkpoint = Dkindex_server.Checkpoint
module Replication = Dkindex_server.Replication
module Wal = Dkindex_server.Wal
module Index_serial = Dkindex_core.Index_serial

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Listen address (numeric)")

let port_arg =
  Arg.(value & opt int 7411 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Port (0 = ephemeral)")

let xmark_arg =
  Arg.(
    value & opt int 40
    & info [ "xmark" ] ~docv:"SCALE" ~doc:"Serve the pinned XMark dataset at this scale")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Dataset seed")

let load_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "load" ] ~docv:"FILE" ~doc:"Serve a saved index snapshot instead of --xmark")

let workers_arg =
  Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc:"Query worker domains")

let queue_arg =
  Arg.(value & opt int 256 & info [ "queue-depth" ] ~docv:"N" ~doc:"Bound before shedding")

let deadline_arg =
  Arg.(
    value & opt float 10.0
    & info [ "deadline" ] ~docv:"SECONDS" ~doc:"Per-request deadline (<= 0 disables)")

let idle_arg =
  Arg.(
    value & opt float 60.0
    & info [ "idle-timeout" ] ~docv:"SECONDS" ~doc:"Close idle connections (<= 0 disables)")

let snapshot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot" ] ~docv:"FILE"
        ~doc:"Snapshot target (Snapshot requests and the final drain write here)")

let data_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "data-dir" ] ~docv:"DIR"
        ~doc:
          "Durability directory: write-ahead log + periodic checkpoints.  On startup the \
           newest valid checkpoint is loaded and the log replayed, so a killed server \
           restarts from its acknowledged state; --load/--xmark then only seed an empty \
           directory.")

let sync_arg =
  Arg.(
    value & opt string "interval:64"
    & info [ "sync" ] ~docv:"POLICY"
        ~doc:"WAL fsync policy: always, never, or interval[:N] (fsync every N records)")

let checkpoint_every_arg =
  Arg.(
    value & opt int 4096
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:"Checkpoint and truncate the WAL after N logged records (or 8 MiB of log)")

let replicate_from_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "replicate-from" ] ~docv:"HOST:PORT"
        ~doc:
          "Run as a replica of this primary: tail its write-ahead log (bootstrapping from a \
           snapshot when needed), refuse writes with not-primary, and serve reads within the \
           staleness bound.  A replica starts empty unless its own --data-dir has state.")

let replica_id_arg =
  Arg.(
    value & opt int 1
    & info [ "replica-id" ] ~docv:"N" ~doc:"Replica identity reported to the primary")

let auto_promote_arg =
  Arg.(
    value & flag
    & info [ "auto-promote" ]
        ~doc:
          "Promote this replica to primary automatically when the primary has been silent past \
           the failover timeout (requires at least one successful contact first)")

let failover_arg =
  Arg.(
    value & opt float 3.0
    & info [ "failover-timeout" ] ~docv:"SECONDS"
        ~doc:"No contact for this long = primary presumed dead (<= 0 disables the watchdog)")

let staleness_arg =
  Arg.(
    value & opt float 10.0
    & info [ "staleness-bound" ] ~docv:"SECONDS"
        ~doc:"Refuse reads once the primary has been silent this long (<= 0 disables)")

let heartbeat_arg =
  Arg.(
    value & opt float 0.25
    & info [ "heartbeat" ] ~docv:"SECONDS" ~doc:"Replication heartbeat interval (primary side)")

let max_conns_arg =
  Arg.(
    value & opt int 0
    & info [ "max-conns" ] ~docv:"N"
        ~doc:
          "Admission control: once N connections are live, new ones are answered with one \
           Overloaded frame and closed (<= 0 disables)")

let read_progress_arg =
  Arg.(
    value & opt float 0.0
    & info [ "read-progress-deadline" ] ~docv:"SECONDS"
        ~doc:
          "Slow-loris defense: a started frame must arrive completely within this window or \
           the connection is evicted (<= 0 disables)")

let scrub_interval_arg =
  Arg.(
    value & opt float 0.0
    & info [ "scrub-interval" ] ~docv:"SECONDS"
        ~doc:
          "Background integrity scrub: every interval, re-read and verify all at-rest state \
           in --data-dir (checkpoint CRC sidecars, sealed WAL segments, containers), \
           quarantining corrupt files after re-checkpointing from the live index (<= 0 \
           disables; needs --data-dir)")

let scrub_rate_arg =
  Arg.(
    value & opt int 0
    & info [ "scrub-rate" ] ~docv:"BYTES_PER_S"
        ~doc:"Bound the scrub read rate — it shares a disk with the WAL (<= 0 unlimited)")

let anti_entropy_arg =
  Arg.(
    value & opt float 0.0
    & info [ "anti-entropy-interval" ] ~docv:"SECONDS"
        ~doc:
          "Replica anti-entropy: every interval, compare integrity digests with the primary \
           at equal write-stream positions and repair divergent ranges (snapshot re-bootstrap \
           as fallback) (<= 0 disables; needs --replicate-from)")

(* A replica that has no local state serves this until its first
   snapshot bootstrap replaces it: a one-node ROOT-only index. *)
let empty_index () =
  let pool = Dkindex_graph.Label.Pool.create () in
  let root = Dkindex_graph.Label.Pool.intern pool Dkindex_graph.Label.root_name in
  let g = Dkindex_graph.Data_graph.make ~pool ~labels:[| root |] ~edges:[] () in
  Dkindex_core.Dk_index.build g ~reqs:[]

let serve host port xmark seed load workers queue_depth deadline idle snapshot data_dir sync
    checkpoint_every replicate_from replica_id auto_promote failover_timeout staleness_bound
    heartbeat max_conns read_progress_deadline scrub_interval scrub_rate anti_entropy_interval =
  let fatal fmt = Printf.ksprintf (fun m -> prerr_endline ("dkindex-server: " ^ m); exit 1) fmt in
  let sync =
    match Wal.sync_policy_of_string sync with Ok s -> s | Error msg -> fatal "%s" msg
  in
  let replica_of =
    match replicate_from with
    | None -> None
    | Some spec -> (
      match String.rindex_opt spec ':' with
      | None -> fatal "--replicate-from wants HOST:PORT, got %s" spec
      | Some i -> (
        let h = String.sub spec 0 i
        and p = String.sub spec (i + 1) (String.length spec - i - 1) in
        match int_of_string_opt p with
        | None -> fatal "--replicate-from: bad port %s" p
        | Some p ->
          Some
            {
              (Replication.default_rconfig ~host:h ~port:p ~replica_id) with
              auto_promote;
              failover_timeout_s = failover_timeout;
              staleness_bound_s = staleness_bound;
            }))
  in
  let build () =
    match (load, replica_of) with
    | Some file, _ ->
      Printf.printf "dkindex-server: loading %s\n%!" file;
      Index_serial.load file
    | None, Some _ ->
      (* A replica bootstraps over the wire; don't build a dataset it
         will immediately throw away. *)
      Printf.printf "dkindex-server: starting empty, awaiting replication bootstrap\n%!";
      empty_index ()
    | None, None ->
      Printf.printf "dkindex-server: building pinned XMark dataset (scale %d, seed %d)\n%!"
        xmark seed;
      (Dkindex_server.Dataset.make ~seed ~scale:xmark ()).index
  in
  let index, durability =
    match data_dir with
    | None -> (build (), None)
    | Some dir ->
      let recovery = Checkpoint.recover ~dir () in
      let index =
        match recovery.Checkpoint.index with
        | Some idx ->
          Printf.printf
            "dkindex-server: recovered from %s (checkpoint %d, %d WAL records replayed%s)\n%!"
            dir recovery.checkpoint_seq recovery.replayed_records
            (if recovery.torn_bytes > 0 then
               Printf.sprintf ", %d torn bytes truncated" recovery.torn_bytes
             else "");
          idx
        | None -> build ()
      in
      let cfg =
        {
          (Checkpoint.default_config ~dir) with
          sync;
          checkpoint_records = checkpoint_every;
        }
      in
      (index, Some (Checkpoint.start ~recovery cfg index))
  in
  let cfg =
    {
      Server.host;
      port;
      workers;
      queue_depth;
      deadline_s = deadline;
      idle_timeout_s = idle;
      max_frame = Dkindex_server.Wire.max_frame_default;
      snapshot_path = snapshot;
      max_conns;
      read_progress_deadline_s = read_progress_deadline;
      scrub_interval_s = scrub_interval;
      scrub_max_bytes_per_s = scrub_rate;
      anti_entropy_interval_s = anti_entropy_interval;
    }
  in
  (match data_dir with
  | Some dir ->
    Printf.printf "dkindex-server: role %s, epoch %d\n%!"
      (if replica_of = None then "primary" else "replica")
      (Replication.load_epoch ~dir)
  | None ->
    if replica_of <> None then Printf.printf "dkindex-server: role replica (no data dir)\n%!");
  match
    Server.run
      ~on_ready:(fun port ->
        Printf.printf "dkindex-server: listening on %s:%d (pid %d)\n%!" host port
          (Unix.getpid ()))
      ?durability ?replica_of ~hub_heartbeat_s:heartbeat cfg index
  with
  | Ok () -> Printf.printf "dkindex-server: drained, bye\n%!"
  | Error msg -> fatal "shutdown failed: %s" msg

let cmd =
  let doc = "serve a D(k)-index over TCP (dkserve protocol)" in
  Cmd.v
    (Cmd.info "dkindex-server" ~doc)
    Term.(
      const serve $ host_arg $ port_arg $ xmark_arg $ seed_arg $ load_arg $ workers_arg
      $ queue_arg $ deadline_arg $ idle_arg $ snapshot_arg $ data_dir_arg $ sync_arg
      $ checkpoint_every_arg $ replicate_from_arg $ replica_id_arg $ auto_promote_arg
      $ failover_arg $ staleness_arg $ heartbeat_arg $ max_conns_arg $ read_progress_arg
      $ scrub_interval_arg $ scrub_rate_arg $ anti_entropy_arg)

let () = exit (Cmd.eval cmd)
