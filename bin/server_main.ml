(* dkindex-server: serve a D(k)-index over TCP (the dkserve wire
   protocol).  The index comes from a saved snapshot (--load) or is
   built from the pinned deterministic XMark dataset (--xmark SCALE),
   which is what dkindex-loadgen's check mode reconstructs locally. *)

open Cmdliner
module Server = Dkindex_server.Server
module Index_serial = Dkindex_core.Index_serial

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Listen address (numeric)")

let port_arg =
  Arg.(value & opt int 7411 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Port (0 = ephemeral)")

let xmark_arg =
  Arg.(
    value & opt int 40
    & info [ "xmark" ] ~docv:"SCALE" ~doc:"Serve the pinned XMark dataset at this scale")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Dataset seed")

let load_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "load" ] ~docv:"FILE" ~doc:"Serve a saved index snapshot instead of --xmark")

let workers_arg =
  Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc:"Query worker domains")

let queue_arg =
  Arg.(value & opt int 256 & info [ "queue-depth" ] ~docv:"N" ~doc:"Bound before shedding")

let deadline_arg =
  Arg.(
    value & opt float 10.0
    & info [ "deadline" ] ~docv:"SECONDS" ~doc:"Per-request deadline (<= 0 disables)")

let idle_arg =
  Arg.(
    value & opt float 60.0
    & info [ "idle-timeout" ] ~docv:"SECONDS" ~doc:"Close idle connections (<= 0 disables)")

let snapshot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot" ] ~docv:"FILE"
        ~doc:"Snapshot target (Snapshot requests and the final drain write here)")

let serve host port xmark seed load workers queue_depth deadline idle snapshot =
  let index =
    match load with
    | Some file ->
      Printf.printf "dkindex-server: loading %s\n%!" file;
      Index_serial.load file
    | None ->
      Printf.printf "dkindex-server: building pinned XMark dataset (scale %d, seed %d)\n%!"
        xmark seed;
      (Dkindex_server.Dataset.make ~seed ~scale:xmark ()).index
  in
  let cfg =
    {
      Server.host;
      port;
      workers;
      queue_depth;
      deadline_s = deadline;
      idle_timeout_s = idle;
      max_frame = Dkindex_server.Wire.max_frame_default;
      snapshot_path = snapshot;
    }
  in
  Server.run
    ~on_ready:(fun port ->
      Printf.printf "dkindex-server: listening on %s:%d (pid %d)\n%!" host port (Unix.getpid ()))
    cfg index;
  Printf.printf "dkindex-server: drained, bye\n%!"

let cmd =
  let doc = "serve a D(k)-index over TCP (dkserve protocol)" in
  Cmd.v
    (Cmd.info "dkindex-server" ~doc)
    Term.(
      const serve $ host_arg $ port_arg $ xmark_arg $ seed_arg $ load_arg $ workers_arg
      $ queue_arg $ deadline_arg $ idle_arg $ snapshot_arg)

let () = exit (Cmd.eval cmd)
